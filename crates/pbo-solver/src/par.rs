//! Parallel exact search: cube-split branch-and-bound workers over the
//! shared term arena.
//!
//! PR 4 made every hot data structure shared and read-only — the
//! instance's flat `TermArena` CSR, the cut pool, the lock-free
//! [`IncumbentCell`] — but the exact search was still one sequential
//! loop. This module closes that gap cube-and-conquer style:
//!
//! 1. **[`CubeSplitter`]** runs a learning-free lookahead from the root
//!    for a bounded number of decisions and harvests the open frontier
//!    as [`Cube`]s — decision-literal prefixes that partition the
//!    assignment space (sibling branches carry complementary literals,
//!    so cubes are pairwise disjoint, and together with the refuted and
//!    solved leaves they cover the root exactly; a property the test
//!    suite checks by enumeration).
//! 2. **[`ParBsolo`]** spawns `threads` workers under
//!    `std::thread::scope`. Each worker pulls cubes from a shared
//!    mutex+condvar deque and solves each subtree with a private
//!    `SearchState` — its own engine, bound pipeline and residual state,
//!    all borrowing the *same* `&Instance` (and through it one read-only
//!    `TermArena` block). The cube's literals are assumed at level 0
//!    (`Engine::assume_at_root`), so conflict analysis can never leave
//!    the subtree and everything a worker learns is implied by
//!    *instance ∧ cube* — valid inside the subtree, private to the
//!    worker.
//! 3. **Sharing.** Incumbents flow through the [`IncumbentCell`]: every
//!    worker publishes verified improvements and adopts strictly better
//!    external ones mid-search (re-rooting its eq. 10–13 cost cuts).
//!    Workers publish their *cost-cut* rows to the cell's cut pool —
//!    those are implied by instance + incumbent bound, so any consumer
//!    may use them — but never their promoted learned clauses, which are
//!    cube-conditional; the pool keeps whichever producer holds the
//!    tightest upper bound (`IncumbentCell::publish_cuts_for`).
//! 4. **Termination.** A worker that exhausts a cube *closes* it (no
//!    completion in the cube beats the final global best — pruning only
//!    ever used upper bounds that the final best also satisfies). The
//!    solve is `Optimal`/`Infeasible` when the splitter's frontier is
//!    fully closed; a budget exhaustion in any worker raises a global
//!    abort flag, remaining cubes are dropped, and the result degrades
//!    to `Feasible`/`Unknown` exactly like the sequential solver.
//!
//! **Queue choice.** The deque is a plain `Mutex<VecDeque>` + `Condvar`:
//! a solve processes tens of cubes, each worth milliseconds-to-seconds
//! of search, so queue contention is unmeasurable and a work-stealing
//! deque would buy nothing (and cost either a dependency or a
//! hand-rolled lock-free structure in a `forbid(unsafe_code)` crate).
//! The decision is recorded in `ROADMAP.md`.
//!
//! With `threads == 1` the driver delegates to the sequential
//! [`Bsolo`] verbatim — bit-identical optimum, node count and stats —
//! so the parallel path is strictly opt-in.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use pbo_core::{verify_solution, Instance, Lit, Value, Var};
use pbo_engine::Engine;
use pbo_ls::IncumbentCell;

use crate::bsolo::{Bsolo, SearchState};
use crate::options::BsoloOptions;
use crate::result::{SolveResult, SolveStatus, SolverStats};

/// Cubes harvested per worker: enough slack that an early-finishing
/// worker always finds more work, small enough that the splitter's
/// learning-free lookahead stays a rounding error next to the search.
const CUBES_PER_WORKER: usize = 2;

/// Hard cap on cube length: beyond this depth the splitter stops
/// refining even if the frontier target was not reached (degenerate
/// instances propagate-complete almost everywhere).
const MAX_SPLIT_DEPTH: usize = 16;

/// Longest head-start learned clause seeded into the workers (longer
/// clauses prune little and cost propagation overhead) ...
const HEAD_SEED_MAX_LEN: usize = 24;
/// ... and how many of them (LBD-best first).
const HEAD_SEED_MAX_COUNT: usize = 512;

/// Conflict budget of the sequential head start: enough search to find
/// a first incumbent and learn the shallow conflict structure every
/// cube borders on, small enough that the serial prefix stays a
/// fraction of any tree worth parallelizing.
const HEAD_CONFLICTS: u64 = 96;

/// An open subtree of the branch-and-bound, described by the decision
/// literals on the path from the root: the subtree contains exactly the
/// assignments extending all of `lits`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cube {
    /// Decision literals of the prefix, in decision order.
    pub lits: Vec<Lit>,
}

/// What became of one frontier leaf during splitting.
#[derive(Clone, Debug)]
pub struct SplitOutcome {
    /// Open cubes: the frontier handed to the workers.
    pub open: Vec<Cube>,
    /// Leaves closed by propagation alone (instance ∧ cube is UNSAT).
    pub refuted: Vec<Cube>,
    /// Leaves where propagation completed the assignment: the cube's
    /// unique feasible completion, with its cost.
    pub solved: Vec<(Cube, i64, Vec<bool>)>,
    /// The instance is unsatisfiable at the root (before any decision).
    pub root_unsat: bool,
    /// Decisions spent splitting (counted into the solve's node total).
    pub decisions: u64,
}

/// Harvests an open frontier of cubes by bounded learning-free
/// lookahead (cube-and-conquer style).
///
/// The splitter drives a private propagation-only [`Engine`] through a
/// breadth-first expansion of the decision tree: pop a prefix, replay it
/// with propagation, and either close the leaf (conflict → refuted,
/// complete assignment → solved) or branch on the next unassigned
/// variable in a deterministic cost-first order. Expansion stops once
/// the frontier reaches the target (or the depth cap), leaving the
/// still-open prefixes as the cube set.
pub struct CubeSplitter;

impl CubeSplitter {
    /// Splits `instance` into roughly `target` open cubes.
    ///
    /// Deterministic: the branching order is constraint-degree
    /// descending (objective cost, then index, breaking ties; negative
    /// phase first), and no learning or activity feedback is involved —
    /// the same instance always yields the same frontier.
    pub fn split(instance: &Instance, target: usize) -> SplitOutcome {
        Self::split_to_depth(instance, target, MAX_SPLIT_DEPTH)
    }

    /// [`CubeSplitter::split`] with an explicit depth cap (exposed for
    /// the soundness tests).
    pub fn split_to_depth(instance: &Instance, target: usize, max_depth: usize) -> SplitOutcome {
        let mut out = SplitOutcome {
            open: Vec::new(),
            refuted: Vec::new(),
            solved: Vec::new(),
            root_unsat: false,
            decisions: 0,
        };
        let mut engine = Engine::new(instance.num_vars());
        for c in instance.constraints() {
            if engine.add_constraint(c).is_err() {
                out.root_unsat = true;
                return out;
            }
        }
        // Branch on high-degree variables first (most constraint
        // occurrences across both polarities, objective cost as the
        // tie-break): both branches of a busy variable propagate hard,
        // which keeps the resulting subtrees balanced — splitting on the
        // most *expensive* variables instead was measured to produce one
        // near-root-sized cube (every costly-positive sibling prunes
        // instantly once an incumbent exists) and one worker doing most
        // of the search.
        let arena = instance.arena();
        let mut order: Vec<Var> = (0..instance.num_vars()).map(Var::new).collect();
        let var_degree = |v: Var| {
            arena.occurrences(v.positive()).0.len() + arena.occurrences(v.negative()).0.len()
        };
        let var_cost = |v: Var| {
            instance
                .objective()
                .map_or(0, |o| o.cost_of_lit(v.positive()).max(o.cost_of_lit(v.negative())))
        };
        order.sort_by_key(|&v| {
            (std::cmp::Reverse(var_degree(v)), std::cmp::Reverse(var_cost(v)), v.index())
        });

        let mut queue: VecDeque<Vec<Lit>> = VecDeque::from([Vec::new()]);
        while let Some(cube) = queue.pop_front() {
            if out.open.len() + queue.len() + 1 >= target.max(1) || cube.len() >= max_depth {
                out.open.push(Cube { lits: cube });
                continue;
            }
            engine.backjump_to(0);
            let mut closed = false;
            for &lit in &cube {
                match engine.assignment().lit_value(lit) {
                    Value::True => continue, // already propagated
                    Value::False => {
                        closed = true;
                        break;
                    }
                    Value::Unassigned => {
                        engine.decide(lit);
                        out.decisions += 1;
                        if engine.propagate().is_some() {
                            closed = true;
                            break;
                        }
                    }
                }
            }
            if closed {
                out.refuted.push(Cube { lits: cube });
                continue;
            }
            if engine.assignment().is_complete() {
                // Propagation completed the assignment: the unique
                // feasible completion of this prefix.
                let model = engine.model();
                debug_assert_eq!(verify_solution(instance, &model), Ok(instance.cost_of(&model)));
                let cost = instance.cost_of(&model);
                out.solved.push((Cube { lits: cube }, cost, model));
                continue;
            }
            let var = order
                .iter()
                .copied()
                .find(|&v| engine.assignment().value(v) == Value::Unassigned)
                .expect("incomplete assignment has an unassigned variable");
            // Negative phase first, matching the engine's default saved
            // phase, so worker 0's first cube resembles the sequential
            // solver's first descent.
            let mut neg = cube.clone();
            neg.push(var.negative());
            let mut pos = cube;
            pos.push(var.positive());
            queue.push_back(neg);
            queue.push_back(pos);
        }
        out
    }
}

/// Shared work queue of the worker pool: a mutex-protected deque with a
/// condvar for idle workers and a global abort flag (raised on budget
/// exhaustion). See the module docs for why this beats work-stealing at
/// this granularity.
struct CubeQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    cubes: VecDeque<Cube>,
    /// Cubes currently being solved by some worker.
    in_flight: usize,
    /// Raised when a worker exhausts the budget: remaining cubes are
    /// abandoned and the solve reports a budget status.
    aborted: bool,
}

impl CubeQueue {
    fn new(cubes: Vec<Cube>) -> CubeQueue {
        CubeQueue {
            state: Mutex::new(QueueState { cubes: cubes.into(), in_flight: 0, aborted: false }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Blocks until a cube is available, every cube is finished, or the
    /// solve is aborted. `None` means "no more work".
    fn next(&self) -> Option<Cube> {
        let mut s = self.lock();
        loop {
            if s.aborted {
                return None;
            }
            if let Some(cube) = s.cubes.pop_front() {
                s.in_flight += 1;
                return Some(cube);
            }
            if s.in_flight == 0 {
                return None;
            }
            // An in-flight sibling may still abort; wait for its verdict.
            s = self.ready.wait(s).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Reports a finished cube; `abort` abandons the remaining frontier.
    fn done(&self, abort: bool) {
        let mut s = self.lock();
        s.in_flight -= 1;
        if abort {
            s.aborted = true;
        }
        if s.aborted || (s.cubes.is_empty() && s.in_flight == 0) {
            self.ready.notify_all();
        }
    }

    fn was_aborted(&self) -> bool {
        self.lock().aborted
    }
}

/// Unwind guard for an in-flight cube: a panic between
/// [`CubeQueue::next`] and [`CubeQueue::done`] would otherwise leave
/// `in_flight` raised forever — sibling workers would wait on the
/// condvar for a verdict that never comes, and `thread::scope` would
/// block on those sleeping siblings instead of propagating the panic.
/// The guard reports the cube as aborted on drop unless it was defused
/// by a normal [`InFlight::finish`].
struct InFlight<'a> {
    queue: &'a CubeQueue,
    armed: bool,
}

impl<'a> InFlight<'a> {
    fn new(queue: &'a CubeQueue) -> InFlight<'a> {
        InFlight { queue, armed: true }
    }

    /// The normal completion path (defuses the guard).
    fn finish(mut self, abort: bool) {
        self.armed = false;
        self.queue.done(abort);
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.queue.done(true);
        }
    }
}

/// Result of one worker's run, merged by the driver at join. The
/// worker's node count is `stats.decisions`.
struct SubtreeResult {
    /// Effort counters summed over every cube this worker solved.
    stats: SolverStats,
    /// Whether every cube this worker took was closed (subtree
    /// exhausted); `false` means a budget ran out mid-cube.
    all_closed: bool,
}

/// Parallel exact branch-and-bound: N cube workers racing over a shared
/// incumbent cell.
///
/// With `threads == 1` this is exactly [`Bsolo`] (delegated, so the
/// sequential trajectory — optimum, node count, every stat — is
/// bit-identical). With more threads the root is split into cubes and
/// solved by a worker pool; the optimum and its proof are unchanged,
/// node counts become timing-dependent.
///
/// # Examples
///
/// ```
/// use pbo_core::InstanceBuilder;
/// use pbo_solver::{BsoloOptions, LbMethod, ParBsolo};
///
/// let mut b = InstanceBuilder::new();
/// let v = b.new_vars(3);
/// b.add_clause([v[0].positive(), v[1].positive()]);
/// b.add_clause([v[1].positive(), v[2].positive()]);
/// b.minimize([(2, v[0].positive()), (3, v[1].positive()), (2, v[2].positive())]);
/// let inst = b.build()?;
///
/// let result = ParBsolo::new(BsoloOptions::with_lb(LbMethod::Mis), 2).solve(&inst);
/// assert!(result.is_optimal());
/// assert_eq!(result.best_cost, Some(3));
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ParBsolo {
    options: BsoloOptions,
    threads: usize,
}

impl ParBsolo {
    /// Creates a parallel solver with `threads` exact workers (clamped
    /// to at least 1).
    pub fn new(options: BsoloOptions, threads: usize) -> ParBsolo {
        ParBsolo { options, threads: threads.max(1) }
    }

    /// The active configuration.
    pub fn options(&self) -> &BsoloOptions {
        &self.options
    }

    /// Number of exact workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Solves `instance` with a private incumbent cell.
    pub fn solve(&self, instance: &Instance) -> SolveResult {
        self.solve_with_cell(instance, None)
    }

    /// Like [`ParBsolo::solve`], but exchanging incumbents through a
    /// caller-owned cell (the portfolio hook). Wall-clock budgets apply
    /// to the whole solve; conflict/decision budgets apply per subtree
    /// task.
    pub fn solve_with_cell(
        &self,
        instance: &Instance,
        cell: Option<&IncumbentCell>,
    ) -> SolveResult {
        if self.threads == 1 {
            let mut result = Bsolo::new(self.options.clone()).solve_with_cell(instance, cell);
            result.stats.nodes_per_worker = vec![result.stats.decisions];
            return result;
        }
        let start = Instant::now();
        // Simplify once; the workers all borrow the simplified instance
        // (and its shared arena). Covering-style simplification preserves
        // the variable space and the exact feasible set, so models and
        // costs transfer 1:1 across the cell.
        let simplified;
        let inst: &Instance = if self.options.simplify {
            simplified = crate::preprocess::simplify(instance);
            &simplified
        } else {
            instance
        };
        let mut worker_options = self.options.clone();
        worker_options.simplify = false;
        let owned_cell;
        let cell: &IncumbentCell = match cell {
            Some(c) => c,
            None => {
                owned_cell = IncumbentCell::new();
                &owned_cell
            }
        };

        let mut stats = SolverStats::default();
        // Head start: one decision-bounded sequential prefix. Finding
        // the *first* incumbent is the one phase cube workers would
        // otherwise duplicate per cube (no upper bound, no cost cuts, no
        // pruning) — running it once at the root and publishing the
        // incumbent lets every worker bound against a real upper from
        // node one; its learned clauses (implied by instance + the
        // published incumbent's cost cut — see `SearchState::init`) seed
        // every worker's clause database, so the workers inherit the
        // head's conflict knowledge instead of each re-deriving it. The
        // head's nodes count into the solve's total, so the
        // sequential-vs-parallel node accounting stays honest.
        // The head's own caps never exceed the caller's budget (a
        // caller-level conflict or decision limit binds the head too).
        let cap = |own: u64, caller: Option<u64>| Some(caller.map_or(own, |c| c.min(own)));
        let head_budget = crate::options::Budget {
            decisions: cap(8 * inst.num_vars() as u64, self.options.budget.decisions),
            conflicts: cap(HEAD_CONFLICTS, self.options.budget.conflicts),
            time: self.options.budget.time.map(|t| t.saturating_sub(start.elapsed())),
        };
        let mut head_options = worker_options.clone();
        head_options.budget = head_budget;
        let (head_status, head_result, seed) =
            match SearchState::init(inst, &head_options, Some(cell), start, &mut stats, &[], &[]) {
                Ok(mut search) => {
                    let status = search.run(start, &mut stats);
                    search.finish_stats(&mut stats);
                    let seed = search.export_learnts(HEAD_SEED_MAX_LEN, HEAD_SEED_MAX_COUNT);
                    (status, cell.snapshot(), seed)
                }
                Err(()) => (SolveStatus::Infeasible, None, Vec::new()),
            };
        if matches!(head_status, SolveStatus::Optimal | SolveStatus::Infeasible) {
            // The head start already finished the proof (small instance
            // or a root-contradictory cost cut): no need to go parallel.
            // One serial line of execution did all the nodes; the other
            // worker slots report zero.
            stats.nodes_per_worker = vec![0; self.threads];
            stats.nodes_per_worker[0] = stats.decisions;
            stats.solve_time = start.elapsed();
            if let Some((at, _)) = cell.history_since(start).last() {
                stats.time_to_best = *at;
            }
            let verified =
                head_result.filter(|(cost, model)| verify_solution(inst, model) == Ok(*cost));
            let (best_cost, best_assignment) = match verified {
                Some((c, m)) => (Some(c), Some(m)),
                None => (None, None),
            };
            return SolveResult { status: head_status, best_cost, best_assignment, stats };
        }
        let head_nodes = stats.decisions;
        let split = CubeSplitter::split(inst, self.threads * CUBES_PER_WORKER);
        stats.decisions = head_nodes + split.decisions;
        if split.root_unsat {
            stats.solve_time = start.elapsed();
            stats.nodes_per_worker = vec![0; self.threads];
            return SolveResult {
                status: SolveStatus::Infeasible,
                best_cost: None,
                best_assignment: None,
                stats,
            };
        }
        // Solutions found by propagation during splitting seed the cell.
        for (_, cost, model) in &split.solved {
            if verify_solution(inst, model) == Ok(*cost) && cell.offer(*cost, model) {
                stats.solutions_found += 1;
            }
        }

        let queue = CubeQueue::new(split.open);
        let outcomes: Vec<SubtreeResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|_| {
                    let queue = &queue;
                    let worker_options = &worker_options;
                    let seed = &seed;
                    scope.spawn(move || run_worker(inst, worker_options, cell, queue, start, seed))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("B&B worker panicked")).collect()
        });

        let mut nodes_per_worker = Vec::with_capacity(outcomes.len());
        let mut all_closed = !queue.was_aborted();
        for o in &outcomes {
            stats.absorb(&o.stats);
            nodes_per_worker.push(o.stats.decisions);
            all_closed &= o.all_closed;
        }
        stats.nodes_per_worker = nodes_per_worker;

        // The global best lives in the cell; re-verify on the way out
        // (producers already verified, but the cell stores — it does not
        // vouch).
        let best =
            cell.snapshot().filter(|(cost, model)| verify_solution(inst, model) == Ok(*cost));
        if let Some((at, _)) = cell.history_since(start).last() {
            stats.time_to_best = *at;
        }
        let status = match (&best, all_closed) {
            (Some(_), true) => SolveStatus::Optimal,
            (None, true) => SolveStatus::Infeasible,
            (Some(_), false) => SolveStatus::Feasible,
            (None, false) => SolveStatus::Unknown,
        };
        stats.solve_time = start.elapsed();
        let (best_cost, best_assignment) = match best {
            Some((c, m)) => (Some(c), Some(m)),
            None => (None, None),
        };
        SolveResult { status, best_cost, best_assignment, stats }
    }
}

/// One worker: pull cubes until the frontier drains or the solve
/// aborts, solving each with a private engine + pipeline rooted in the
/// cube.
fn run_worker(
    instance: &Instance,
    options: &BsoloOptions,
    cell: &IncumbentCell,
    queue: &CubeQueue,
    start: Instant,
    seed: &[Vec<Lit>],
) -> SubtreeResult {
    let mut total = SolverStats::default();
    let mut all_closed = true;
    while let Some(cube) = queue.next() {
        let in_flight = InFlight::new(queue);
        let mut stats = SolverStats::default();
        let status = solve_cube(instance, options, cell, start, &cube, seed, &mut stats);
        total.absorb(&stats);
        let closed = matches!(status, SolveStatus::Optimal | SolveStatus::Infeasible);
        in_flight.finish(!closed);
        if !closed {
            all_closed = false;
            break;
        }
    }
    SubtreeResult { stats: total, all_closed }
}

/// Solves one subtree task to exhaustion (or budget): the sequential
/// search loop, rooted in `cube` and seeded with the head start's
/// learned clauses, publishing incumbents to (and adopting from) the
/// shared cell.
fn solve_cube(
    instance: &Instance,
    options: &BsoloOptions,
    cell: &IncumbentCell,
    start: Instant,
    cube: &Cube,
    seed: &[Vec<Lit>],
    stats: &mut SolverStats,
) -> SolveStatus {
    match SearchState::init(instance, options, Some(cell), start, stats, &cube.lits, seed) {
        Ok(mut search) => {
            let status = search.run(start, stats);
            search.finish_stats(stats);
            status
        }
        // The cube is closed by root propagation (possibly through a
        // head-seeded, incumbent-conditional clause — in which case the
        // incumbent justifying it is already in the cell): an exhausted,
        // empty subtree.
        Err(()) => SolveStatus::Infeasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{Budget, LbMethod};
    use pbo_core::{brute_force, InstanceBuilder};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_instance(rng: &mut ChaCha8Rng, n_max: usize) -> Instance {
        let n = rng.gen_range(3..=n_max);
        let mut b = InstanceBuilder::new();
        let vars = b.new_vars(n);
        for _ in 0..rng.gen_range(2..9) {
            let k = rng.gen_range(1..=3.min(n));
            let mut idxs: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                idxs.swap(i, j);
            }
            let terms: Vec<(i64, Lit)> = idxs[..k]
                .iter()
                .map(|&i| (rng.gen_range(1..4), vars[i].lit(rng.gen_bool(0.75))))
                .collect();
            let maxw: i64 = terms.iter().map(|t| t.0).sum();
            b.add_linear(terms, pbo_core::RelOp::Ge, rng.gen_range(1..=maxw));
        }
        if rng.gen_bool(0.9) {
            b.minimize(vars.iter().map(|v| (rng.gen_range(0..6), v.lit(rng.gen_bool(0.85)))));
        }
        b.build().unwrap()
    }

    /// A cube matches an assignment when every cube literal is true
    /// under it.
    fn matches(cube: &Cube, assignment: &[bool]) -> bool {
        cube.lits.iter().all(|l| assignment[l.var().index()] == l.is_positive())
    }

    #[test]
    fn cube_split_partitions_the_assignment_space() {
        // The PR-5 soundness property: open cubes, refuted leaves and
        // solved leaves together cover the root exactly — every complete
        // assignment matches exactly one leaf — leaves are pairwise
        // disjoint, refuted leaves contain no feasible assignment, and a
        // solved leaf's only feasible completion is its recorded model.
        let mut rng = ChaCha8Rng::seed_from_u64(0xc0be);
        for round in 0..25 {
            let inst = random_instance(&mut rng, 8);
            let target = [1usize, 2, 5, 8][round % 4];
            let split = CubeSplitter::split_to_depth(&inst, target, 6);
            if split.root_unsat {
                assert_eq!(brute_force(&inst).cost(), None, "round {round}: UNSAT claim");
                continue;
            }
            let mut leaves: Vec<(&Cube, &str)> = Vec::new();
            leaves.extend(split.open.iter().map(|c| (c, "open")));
            leaves.extend(split.refuted.iter().map(|c| (c, "refuted")));
            leaves.extend(split.solved.iter().map(|(c, _, _)| (c, "solved")));
            // Pairwise disjoint: two leaves always disagree on some
            // shared variable (prefix-tree siblings carry complementary
            // literals).
            for (i, (a, _)) in leaves.iter().enumerate() {
                for (b, _) in &leaves[i + 1..] {
                    let disjoint = a.lits.iter().any(|la| b.lits.contains(&!*la));
                    assert!(disjoint, "round {round}: overlapping leaves {a:?} / {b:?}");
                }
            }
            // Exact cover, by enumeration.
            let n = inst.num_vars();
            for bits in 0..(1u32 << n) {
                let assignment: Vec<bool> = (0..n).map(|v| bits & (1 << v) != 0).collect();
                let hits: Vec<&str> = leaves
                    .iter()
                    .filter(|(c, _)| matches(c, &assignment))
                    .map(|&(_, kind)| kind)
                    .collect();
                assert_eq!(hits.len(), 1, "round {round}: assignment {bits:b} in {hits:?}");
                let feasible = inst.is_feasible(&assignment);
                match hits[0] {
                    "refuted" => {
                        assert!(!feasible, "round {round}: feasible assignment in refuted leaf")
                    }
                    "solved" if feasible => {
                        let (_, cost, model) =
                            split.solved.iter().find(|(c, _, _)| matches(c, &assignment)).unwrap();
                        assert_eq!(&assignment, model, "round {round}");
                        assert_eq!(inst.cost_of(&assignment), *cost, "round {round}");
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn split_is_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let inst = random_instance(&mut rng, 9);
        let a = CubeSplitter::split(&inst, 8);
        let b = CubeSplitter::split(&inst, 8);
        assert_eq!(a.open, b.open);
        assert_eq!(a.refuted, b.refuted);
        assert_eq!(a.decisions, b.decisions);
    }

    #[test]
    fn parallel_solver_matches_brute_force() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x9a8);
        for round in 0..30 {
            let inst = random_instance(&mut rng, 9);
            let expected = brute_force(&inst);
            for threads in [2usize, 4] {
                let got = ParBsolo::new(BsoloOptions::with_lb(LbMethod::Mis), threads).solve(&inst);
                match expected.cost() {
                    Some(opt) => {
                        assert_eq!(
                            got.status,
                            SolveStatus::Optimal,
                            "round {round} x{threads}: expected optimal"
                        );
                        assert_eq!(got.best_cost, Some(opt), "round {round} x{threads}");
                        let model = got.best_assignment.as_ref().expect("model");
                        assert_eq!(verify_solution(&inst, model), Ok(opt));
                    }
                    None => {
                        assert_eq!(
                            got.status,
                            SolveStatus::Infeasible,
                            "round {round} x{threads}: expected infeasible"
                        );
                    }
                }
                assert_eq!(got.stats.nodes_per_worker.len(), threads);
            }
        }
    }

    #[test]
    fn single_thread_is_bit_identical_to_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x1b17);
        for round in 0..20 {
            let inst = random_instance(&mut rng, 9);
            for lb in [LbMethod::Mis, LbMethod::Lpr] {
                let seq = Bsolo::new(BsoloOptions::with_lb(lb)).solve(&inst);
                let par = ParBsolo::new(BsoloOptions::with_lb(lb), 1).solve(&inst);
                let label = format!("{lb:?} round {round}");
                assert_eq!(par.status, seq.status, "{label}: status");
                assert_eq!(par.best_cost, seq.best_cost, "{label}: cost");
                assert_eq!(par.best_assignment, seq.best_assignment, "{label}: model");
                assert_eq!(par.stats.decisions, seq.stats.decisions, "{label}: decisions");
                assert_eq!(par.stats.conflicts, seq.stats.conflicts, "{label}: conflicts");
                assert_eq!(par.stats.propagations, seq.stats.propagations, "{label}: propagations");
                assert_eq!(par.stats.lb_calls, seq.stats.lb_calls, "{label}: lb calls");
                assert_eq!(
                    par.stats.bound_conflicts, seq.stats.bound_conflicts,
                    "{label}: bound conflicts"
                );
                assert_eq!(
                    par.stats.lb_margin_sum, seq.stats.lb_margin_sum,
                    "{label}: bound strength"
                );
                assert_eq!(par.stats.restarts, seq.stats.restarts, "{label}: restarts");
                assert_eq!(
                    par.stats.backjump_levels, seq.stats.backjump_levels,
                    "{label}: backjumps"
                );
                assert_eq!(
                    par.stats.solutions_found, seq.stats.solutions_found,
                    "{label}: solutions"
                );
                assert_eq!(par.stats.nodes_per_worker, vec![seq.stats.decisions], "{label}");
            }
        }
    }

    #[test]
    fn budget_exhaustion_degrades_not_lies() {
        // A zero-decision budget with several threads: the solve must
        // come back Unknown or Feasible, never a fabricated Optimal.
        let mut rng = ChaCha8Rng::seed_from_u64(0xbadbed);
        let n = 16;
        let mut b = InstanceBuilder::new();
        let vars = b.new_vars(n);
        for i in 0..n {
            b.add_clause([
                vars[i].positive(),
                vars[(i + 3) % n].positive(),
                vars[(i + 7) % n].positive(),
            ]);
        }
        b.minimize(vars.iter().map(|v| (rng.gen_range(1..9), v.positive())));
        let inst = b.build().unwrap();
        let options = BsoloOptions::with_lb(LbMethod::Mis)
            .budget(Budget { conflicts: Some(1), ..Budget::default() });
        let got = ParBsolo::new(options, 3).solve(&inst);
        assert!(
            matches!(got.status, SolveStatus::Feasible | SolveStatus::Unknown),
            "budget run must degrade: {:?}",
            got.status
        );
        if let (Some(cost), Some(model)) = (got.best_cost, got.best_assignment.as_ref()) {
            assert_eq!(verify_solution(&inst, model), Ok(cost));
        }
    }

    #[test]
    fn satisfaction_instances_solve_in_parallel() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5a7);
        for round in 0..15 {
            let n = rng.gen_range(4..9);
            let mut b = InstanceBuilder::new();
            let vars = b.new_vars(n);
            for _ in 0..rng.gen_range(3..9) {
                let k = rng.gen_range(2..=3.min(n));
                let mut idxs: Vec<usize> = (0..n).collect();
                for i in 0..k {
                    let j = rng.gen_range(i..n);
                    idxs.swap(i, j);
                }
                b.add_at_least(
                    rng.gen_range(1..=k as i64),
                    idxs[..k].iter().map(|&i| vars[i].lit(rng.gen_bool(0.6))),
                );
            }
            let inst = b.build().unwrap();
            let sat = brute_force(&inst).cost().is_some();
            let got = ParBsolo::new(BsoloOptions::with_lb(LbMethod::Lpr), 2).solve(&inst);
            if sat {
                assert_eq!(got.status, SolveStatus::Optimal, "round {round}: expected SAT");
                assert!(inst.is_feasible(got.best_assignment.as_ref().unwrap()));
            } else {
                assert_eq!(got.status, SolveStatus::Infeasible, "round {round}: expected UNSAT");
            }
        }
    }
}
