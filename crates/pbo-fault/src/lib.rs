//! Fault-injection probes for the pbo workspace.
//!
//! The crate provides one macro, [`failpoint!`], which marks a *site* in
//! production code where a test may inject a fault (today: a panic).
//! The expansion is gated on the **consuming crate's** `failpoints`
//! feature — each crate that plants probes declares its own
//! `failpoints` feature forwarding to `pbo-fault/failpoints` — so with
//! the feature off (the default, and all release builds) every probe
//! expands to an empty block: no branch, no atomic load, no code.
//!
//! With the feature on, a probe is a single relaxed atomic load until a
//! [`FaultPlan`] is installed; tests install one with [`install`],
//! which also serializes fault-injecting tests process-wide (the plan
//! is global state).
//!
//! # Examples
//!
//! Production code plants a probe:
//!
//! ```
//! use pbo_fault::failpoint;
//!
//! fn publish_batch() {
//!     failpoint!("pool.publish");
//!     // ... the real work ...
//! }
//! # publish_batch();
//! ```
//!
//! A test (built with `--features failpoints`) injects a panic at the
//! second hit of that site:
//!
//! ```
//! # #[cfg(feature = "failpoints")] {
//! use pbo_fault::{install, FaultPlan};
//!
//! let guard = install(FaultPlan::new().panic_on("pool.publish", 2));
//! pbo_fault::fire("pool.publish"); // first hit: passes
//! let err = std::panic::catch_unwind(|| pbo_fault::fire("pool.publish"));
//! assert!(err.is_err()); // second hit: panics
//! assert_eq!(guard.hits("pool.publish"), 2);
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Plants a fault-injection probe at a named site.
///
/// Expands to an empty block unless the *consuming* crate's
/// `failpoints` feature is enabled (the consumer must declare such a
/// feature, typically forwarding to `pbo-fault/failpoints`). Site names
/// are dotted paths by convention (`"sched.push"`, `"cell.offer"`).
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {{
        #[cfg(feature = "failpoints")]
        $crate::fire($site);
    }};
}

#[cfg(feature = "failpoints")]
mod imp {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Fast-path gate: probes are a single relaxed load until a plan is
    /// installed.
    static ACTIVE: AtomicBool = AtomicBool::new(false);

    fn state() -> &'static Mutex<State> {
        static STATE: OnceLock<Mutex<State>> = OnceLock::new();
        STATE.get_or_init(|| Mutex::new(State::default()))
    }

    /// Serializes fault-injecting tests: the plan is process-global, so
    /// two concurrent tests would otherwise trip each other's faults.
    fn serial() -> &'static Mutex<()> {
        static SERIAL: OnceLock<Mutex<()>> = OnceLock::new();
        SERIAL.get_or_init(|| Mutex::new(()))
    }

    /// Recovers from a poisoned lock: the guarded state is always left
    /// fully written (we never panic mid-update while holding it), and
    /// fault-injection tests poison locks by design.
    fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[derive(Default)]
    struct State {
        triggers: Vec<Trigger>,
        hits: HashMap<&'static str, u64>,
    }

    struct Trigger {
        site: &'static str,
        nth: u64,
        fired: bool,
    }

    /// A schedule of faults to inject: which site panics at which hit.
    ///
    /// Triggers are *one-shot*: after firing, a trigger disarms, so a
    /// worker dying at a probe does not take every sibling that later
    /// crosses the same site with it — exactly the N−1-survivors
    /// scenario the harness exists to exercise.
    #[derive(Default, Debug)]
    pub struct FaultPlan {
        triggers: Vec<(&'static str, u64)>,
    }

    impl FaultPlan {
        /// An empty plan (no faults fire; probes still count hits).
        pub fn new() -> FaultPlan {
            FaultPlan::default()
        }

        /// Panics at the `nth` (1-based) hit of `site`.
        pub fn panic_on(mut self, site: &'static str, nth: u64) -> FaultPlan {
            self.triggers.push((site, nth.max(1)));
            self
        }
    }

    /// Keeps the installed [`FaultPlan`] alive; uninstalls (and resets
    /// hit counters) on drop. Holds the process-wide serialization lock
    /// for its lifetime.
    pub struct FaultGuard {
        _serial: MutexGuard<'static, ()>,
    }

    impl FaultGuard {
        /// Hits recorded at `site` since this plan was installed.
        pub fn hits(&self, site: &str) -> u64 {
            relock(state()).hits.get(site).copied().unwrap_or(0)
        }

        /// Whether every trigger of the plan has fired.
        pub fn all_fired(&self) -> bool {
            relock(state()).triggers.iter().all(|t| t.fired)
        }
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            ACTIVE.store(false, Ordering::SeqCst);
            let mut s = relock(state());
            s.triggers.clear();
            s.hits.clear();
        }
    }

    /// Installs `plan` globally and returns the guard that owns it.
    /// Blocks until any previously installed plan is dropped.
    pub fn install(plan: FaultPlan) -> FaultGuard {
        let serial = serial().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        {
            let mut s = relock(state());
            s.triggers = plan
                .triggers
                .into_iter()
                .map(|(site, nth)| Trigger { site, nth, fired: false })
                .collect();
            s.hits.clear();
        }
        ACTIVE.store(true, Ordering::SeqCst);
        FaultGuard { _serial: serial }
    }

    /// Probe entry point — called by [`failpoint!`](crate::failpoint);
    /// not meant to be called directly. Panics (with a
    /// `"failpoint: <site>"` message) when an armed trigger matches.
    pub fn fire(site: &'static str) {
        if !ACTIVE.load(Ordering::Relaxed) {
            return;
        }
        let fired = {
            let mut s = relock(state());
            let n = s.hits.entry(site).or_insert(0);
            *n += 1;
            let n = *n;
            match s.triggers.iter_mut().find(|t| !t.fired && t.site == site && t.nth == n) {
                Some(t) => {
                    t.fired = true;
                    true
                }
                None => false,
            }
        };
        // The state lock is released before unwinding so the counters
        // stay readable (and un-poisoned) after the injected panic.
        if fired {
            panic!("failpoint: {site}");
        }
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{fire, install, FaultGuard, FaultPlan};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::{install, FaultPlan};

    #[test]
    fn probes_count_and_fire_once() {
        let guard = install(FaultPlan::new().panic_on("t.site", 3));
        super::fire("t.site");
        super::fire("t.site");
        assert!(std::panic::catch_unwind(|| super::fire("t.site")).is_err());
        // One-shot: the fourth hit passes.
        super::fire("t.site");
        assert_eq!(guard.hits("t.site"), 4);
        assert!(guard.all_fired());
    }

    #[test]
    fn inactive_probes_are_silent() {
        {
            let _g = install(FaultPlan::new().panic_on("t.other", 1));
        }
        // Guard dropped: nothing fires.
        super::fire("t.other");
    }
}
