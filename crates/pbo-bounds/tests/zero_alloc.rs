//! Steady-state allocation test for the per-node bound kernels.
//!
//! The per-node hot path — residual-state `apply`/`unwind_to`, the
//! `view` snapshot, and the MIS / LGR bound kernels through
//! `lower_bound_into` — must not allocate once warmed up: every scratch
//! buffer is reusable and epoch-stamped, the hot sorts are unstable
//! (stable sorts allocate merge buffers), and the explanation is built
//! into the caller's reusable `LbOutcome`. This test installs a counting
//! global allocator, replays the same apply/bound/unwind script twice,
//! and asserts the second (steady-state) replay performs **zero**
//! allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pbo_benchgen::RandomParams;
use pbo_bounds::{
    DynRowOrigin, DynamicRows, LagrangianBound, LbOutcome, LowerBound, MisBound, ResidualState,
};
use pbo_core::{normalize, Assignment, Instance, Lit, RelOp, Var};
use pbo_trace::{BoundOutcome, TraceEvent, Tracer};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// The pbo-bounds crate itself forbids unsafe code; this integration test
// is a separate crate, and a counting allocator is the only way to
// observe heap traffic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A covering-style instance large enough that the kernels exercise all
/// their scratch paths.
fn probe_instance() -> Instance {
    RandomParams {
        vars: 40,
        constraints: 60,
        arity: (3, 7),
        coeff: (1, 4),
        positive_bias: 1.0,
        optimization: true,
        ..RandomParams::default()
    }
    .generate(11)
}

/// The eq. 10 objective cut for a fake incumbent, as the solver's
/// re-root would install it.
fn objective_cut_rows(instance: &Instance, upper: i64) -> DynamicRows {
    let mut rows = DynamicRows::for_instance(instance);
    rows.begin_epoch();
    let obj = instance.objective().expect("optimization instance");
    if let Ok(cs) = normalize(obj.terms(), RelOp::Le, upper - 1 - obj.offset()) {
        for c in cs {
            rows.push(c, DynRowOrigin::ObjectiveCut);
        }
    }
    rows
}

/// The per-node script: apply a batch of literals, bound with both
/// kernels, unwind — the exact shape of the solver's hot loop,
/// including the telemetry emission the `BoundPipeline` performs after
/// every bound call. With the default no-op sink (`Tracer::off`) the
/// emission must cost a single branch and zero heap traffic — that is
/// the disabled-path overhead contract of `pbo-trace`.
#[allow(clippy::too_many_arguments)]
fn replay_script(
    instance: &Instance,
    state: &mut ResidualState,
    assignment: &mut Assignment,
    mis: &mut MisBound,
    lgr: &mut LagrangianBound,
    out: &mut LbOutcome,
    tracer: &Tracer,
    upper: i64,
    script: &[Vec<Lit>],
) {
    for batch in script {
        for &lit in batch {
            assignment.assign_lit(lit);
            state.apply(instance, lit);
        }
        {
            let view = state.view(instance, assignment);
            mis.lower_bound_into(&view, Some(upper), out);
            tracer.emit(TraceEvent::Bound {
                method: "mis",
                stage: "fixed",
                outcome: BoundOutcome::Open,
                margin: out.bound,
                dur_ns: 0,
            });
        }
        {
            let view = state.view(instance, assignment);
            lgr.lower_bound_into(&view, Some(upper), out);
            tracer.emit(TraceEvent::Bound {
                method: "lgr",
                stage: "fixed",
                outcome: BoundOutcome::Open,
                margin: out.bound,
                dur_ns: 0,
            });
        }
        for &lit in batch.iter().rev() {
            assignment.unassign(lit.var());
        }
        state.unwind_to(instance, 0);
    }
}

#[test]
fn mis_and_lgr_per_node_calls_are_allocation_free_at_steady_state() {
    let instance = probe_instance();
    let total_cost: i64 =
        instance.objective().expect("optimization").terms().iter().map(|&(c, _)| c).sum();
    let upper = (2 * total_cost) / 3 + 1;
    let rows = objective_cut_rows(&instance, upper);

    let mut state = ResidualState::new(&instance);
    state.set_dynamic_rows(&rows);
    let mut assignment = Assignment::new(instance.num_vars());
    let mut mis = MisBound::new();
    let mut lgr = LagrangianBound::new(instance.num_constraints());
    let mut out = LbOutcome::bound(0, Vec::new());
    let tracer = Tracer::off();

    // A deterministic batch script over distinct variables.
    let script: Vec<Vec<Lit>> = (0..8)
        .map(|round| {
            (0..5)
                .map(|k| Var::new((round * 5 + k) % instance.num_vars()).lit(k % 2 == 0))
                .collect()
        })
        .collect();

    // Warm-up: grow every scratch buffer to its steady-state capacity.
    for _ in 0..3 {
        replay_script(
            &instance,
            &mut state,
            &mut assignment,
            &mut mis,
            &mut lgr,
            &mut out,
            &tracer,
            upper,
            &script,
        );
    }

    // Steady state: replaying the same script — telemetry emission
    // through the no-op sink included — must not touch the heap.
    let before = ALLOCS.load(Ordering::Relaxed);
    replay_script(
        &instance,
        &mut state,
        &mut assignment,
        &mut mis,
        &mut lgr,
        &mut out,
        &tracer,
        upper,
        &script,
    );
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "per-node apply/view/bound/unwind performed {delta} heap allocations at steady state"
    );
}

#[test]
fn first_calls_do_allocate_making_the_counter_meaningful() {
    // Sanity check of the instrument itself: a cold engine must show
    // allocator traffic, or the zero assertion above proves nothing.
    let instance = probe_instance();
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut state = ResidualState::new(&instance);
    let assignment = Assignment::new(instance.num_vars());
    let mut mis = MisBound::new();
    let mut out = LbOutcome::bound(0, Vec::new());
    let view = state.view(&instance, &assignment);
    mis.lower_bound_into(&view, None, &mut out);
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert!(delta > 0, "cold-start path must allocate (counter wired correctly)");
}
