//! Differential/property tests of the incremental residual state: after
//! *any* decide/propagate/backjump sequence driven through the real
//! engine, [`ResidualState`] must be bit-identical to a fresh
//! [`Subproblem::new`] rebuild — path cost, active set (indices, residual
//! right-hand sides, free-term counts), free-term lists, false-literal
//! lists — and every lower-bound procedure must return identical
//! [`LbOutcome`]s through either view.

use pbo_benchgen::RandomParams;
use pbo_bounds::{LagrangianBound, LowerBound, LprBound, MisBound, ResidualState, Subproblem};
use pbo_core::{Instance, Lit, Value};
use pbo_engine::{Engine, Resolution, TrailObserver};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Syncs `state` to the engine trail through the low-watermark protocol.
fn sync(state: &mut ResidualState, engine: &mut Engine, obs: TrailObserver) {
    let keep = engine.sync_trail(obs, state.len());
    state.unwind_to(keep);
    for &lit in &engine.trail()[keep..] {
        state.apply(lit);
    }
}

/// Asserts the incremental view equals the rebuild oracle in every
/// observable dimension, then returns for how many constraints the free
/// terms were compared (just to keep the check honest).
fn assert_views_identical(
    state: &mut ResidualState,
    instance: &Instance,
    engine: &Engine,
    context: &str,
) -> usize {
    let assignment = engine.assignment();
    let oracle = Subproblem::new(instance, assignment);
    let view = state.view(instance, assignment);
    assert_eq!(view.path_cost(), oracle.path_cost(), "{context}: path cost");
    assert_eq!(view.active(), oracle.active(), "{context}: active entries");
    let mut compared = 0;
    for e in view.active() {
        let i = e.index as usize;
        let fresh: Vec<_> = oracle.free_terms(i).collect();
        let incr: Vec<_> = view.free_terms(i).collect();
        assert_eq!(incr, fresh, "{context}: free terms of constraint {i}");
        let fresh_false: Vec<Lit> = oracle.false_literals(i).collect();
        let incr_false: Vec<Lit> = view.false_literals(i).collect();
        assert_eq!(incr_false, fresh_false, "{context}: false literals of constraint {i}");
        compared += 1;
    }
    compared
}

/// Drives the engine through a random decide/propagate/backjump walk,
/// checking the state against the rebuild oracle at every quiescent
/// point.
fn random_walk(instance: &Instance, walk_seed: u64, steps: usize) {
    let mut engine = Engine::new(instance.num_vars());
    for c in instance.constraints() {
        engine
            .add_constraint(c)
            .expect("walk instances must be root-consistent, or the walk tests nothing");
    }
    let mut state = ResidualState::new(instance);
    let obs = engine.register_trail_observer();
    let mut rng = ChaCha8Rng::seed_from_u64(walk_seed);
    // Also feed both view flavours to warm-started bound procedures: they
    // must stay in lockstep along the whole walk.
    let mut mis = MisBound::new();
    let mut lgr_incr = LagrangianBound::new(instance.num_constraints());
    let mut lgr_reb = LagrangianBound::new(instance.num_constraints());
    let mut lpr_incr = LprBound::new(instance);
    let mut lpr_reb = LprBound::new(instance);

    for step in 0..steps {
        let roll = rng.gen_range(0u32..10);
        if roll < 6 {
            // Decide a random unassigned literal (if any).
            let unassigned: Vec<usize> = (0..instance.num_vars())
                .filter(|&v| engine.assignment().value(pbo_core::Var::new(v)) == Value::Unassigned)
                .collect();
            if unassigned.is_empty() {
                engine.backjump_to(0);
                continue;
            }
            let v = unassigned[rng.gen_range(0..unassigned.len())];
            engine.decide(pbo_core::Var::new(v).lit(rng.gen_bool(0.5)));
            if let Some(conflict) = engine.propagate() {
                match engine.resolve_conflict(conflict) {
                    Resolution::Unsat => return,
                    Resolution::Backjumped { .. } => {
                        if engine.propagate().is_some() {
                            // Rare cascade; give up on this walk.
                            return;
                        }
                    }
                }
            }
        } else if roll < 9 {
            // Backjump to a random earlier level.
            let level = engine.decision_level();
            if level > 0 {
                engine.backjump_to(rng.gen_range(0..level));
            }
        } else {
            engine.restart();
        }

        sync(&mut state, &mut engine, obs);
        let context = format!("step {step}");
        assert_views_identical(&mut state, instance, &engine, &context);

        // Lower-bound lockstep: identical LbOutcomes through either view.
        let assignment = engine.assignment();
        let oracle = Subproblem::new(instance, assignment);
        let upper = if rng.gen_bool(0.5) { Some(rng.gen_range(1i64..50)) } else { None };
        {
            let view = state.view(instance, assignment);
            let a = mis.lower_bound(&view, upper);
            let b = mis.lower_bound(&oracle, upper);
            assert_eq!(a, b, "{context}: MIS outcome diverged");
        }
        {
            let view = state.view(instance, assignment);
            let a = lgr_incr.lower_bound(&view, upper);
            let b = lgr_reb.lower_bound(&oracle, upper);
            assert_eq!(a, b, "{context}: LGR outcome diverged");
            assert_eq!(
                lgr_incr.multipliers(),
                lgr_reb.multipliers(),
                "{context}: LGR warm-start state diverged"
            );
        }
        {
            let view = state.view(instance, assignment);
            let a = lpr_incr.lower_bound(&view, upper);
            let b = lpr_reb.lower_bound(&oracle, upper);
            assert_eq!(a, b, "{context}: LPR outcome diverged");
        }
    }
}

/// Covering-style random instances (all-positive constraints, like the
/// paper's benchmark families): never root-inconsistent, so every walk
/// actually runs.
fn monotone_params(vars: usize, constraints: usize, arity: (usize, usize)) -> RandomParams {
    RandomParams {
        vars,
        constraints,
        arity,
        coeff: (1, 4),
        positive_bias: 1.0,
        optimization: true,
        ..RandomParams::default()
    }
}

/// Mixed-polarity instance with weakly forcing constraints (small rhs),
/// built locally so negative literals inside constraints are exercised
/// without making the root inconsistent.
fn mixed_polarity_instance(seed: u64) -> Instance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x3141);
    let n = 16usize;
    let mut b = pbo_core::InstanceBuilder::new();
    let vars = b.new_vars(n);
    for _ in 0..24 {
        let k = rng.gen_range(3usize..6);
        let mut idxs: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            idxs.swap(i, j);
        }
        let terms: Vec<(i64, Lit)> = idxs[..k]
            .iter()
            .map(|&i| (rng.gen_range(1i64..4), vars[i].lit(rng.gen_bool(0.6))))
            .collect();
        // rhs at most 2: constraints never force anything at the root.
        let rhs = rng.gen_range(1i64..=2);
        b.add_linear(terms, pbo_core::RelOp::Ge, rhs);
    }
    b.minimize(vars.iter().map(|v| (rng.gen_range(0i64..8), v.lit(rng.gen_bool(0.7)))));
    b.build().expect("weakly constrained instances always build")
}

#[test]
fn residual_state_matches_rebuild_on_random_walks() {
    for seed in 0..6u64 {
        let instance = monotone_params(18, 26, (2, 6)).generate(seed);
        random_walk(&instance, 0x5eed ^ seed, 60);
    }
}

#[test]
fn residual_state_matches_rebuild_on_pb_heavy_instances() {
    for seed in 0..4u64 {
        let instance = monotone_params(24, 30, (4, 8)).generate(seed);
        random_walk(&instance, 0xabcd ^ seed, 50);
    }
}

#[test]
fn residual_state_matches_rebuild_with_negative_literals() {
    for seed in 0..5u64 {
        let instance = mixed_polarity_instance(seed);
        random_walk(&instance, 0x1dea ^ seed, 60);
    }
}

#[test]
fn residual_state_matches_rebuild_on_satisfaction_instances() {
    // No objective: path cost stays at zero, active tracking still must
    // agree.
    for seed in 0..3u64 {
        let instance =
            RandomParams { optimization: false, ..monotone_params(16, 22, (2, 5)) }.generate(seed);
        random_walk(&instance, 0x7777 ^ seed, 40);
    }
}

#[test]
fn deep_backjump_after_long_descent_resyncs_in_one_step() {
    // A long descent followed by a jump straight back to the root is the
    // worst case for the watermark protocol: everything unwinds.
    let instance = monotone_params(20, 24, (2, 5)).generate(3);
    let mut engine = Engine::new(instance.num_vars());
    for c in instance.constraints() {
        engine.add_constraint(c).expect("monotone instances are root-consistent");
    }
    let mut state = ResidualState::new(&instance);
    let obs = engine.register_trail_observer();
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    for _ in 0..instance.num_vars() {
        let unassigned: Vec<usize> = (0..instance.num_vars())
            .filter(|&v| engine.assignment().value(pbo_core::Var::new(v)) == Value::Unassigned)
            .collect();
        let Some(&v) = unassigned.first() else { break };
        engine.decide(pbo_core::Var::new(v).lit(rng.gen_bool(0.5)));
        if engine.propagate().is_some() {
            break;
        }
    }
    sync(&mut state, &mut engine, obs);
    assert_views_identical(&mut state, &instance, &engine, "after descent");
    let deep_len = state.len();
    engine.backjump_to(0);
    sync(&mut state, &mut engine, obs);
    assert!(state.len() <= deep_len);
    assert_views_identical(&mut state, &instance, &engine, "after root backjump");
    assert!(
        state.stats.unwound >= deep_len as u64 - engine.trail_len() as u64,
        "everything above the root must have been unwound"
    );
}
