//! Differential/property tests of the incremental residual state: after
//! *any* decide/propagate/backjump sequence driven through the real
//! engine, [`ResidualState`] must be bit-identical to a fresh
//! [`Subproblem::new`] rebuild — path cost, active set (indices, residual
//! right-hand sides, free-term counts), free-term lists, false-literal
//! lists — and every lower-bound procedure must return identical
//! [`LbOutcome`]s through either view.

use pbo_benchgen::RandomParams;
use pbo_bounds::{
    DynRowOrigin, DynamicRows, LagrangianBound, LowerBound, LprBound, MisBound, ResidualState,
    Subproblem,
};
use pbo_core::{brute_force, normalize, Instance, Lit, RelOp, Value};
use pbo_engine::{Engine, Resolution, TrailObserver};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Syncs `state` to the engine trail through the low-watermark protocol.
fn sync(state: &mut ResidualState, instance: &Instance, engine: &mut Engine, obs: TrailObserver) {
    let keep = engine.sync_trail(obs, state.len());
    state.unwind_to(instance, keep);
    for &lit in &engine.trail()[keep..] {
        state.apply(instance, lit);
    }
}

/// Asserts the incremental view equals the rebuild oracle in every
/// observable dimension, then returns for how many constraints the free
/// terms were compared (just to keep the check honest).
fn assert_views_identical(
    state: &mut ResidualState,
    instance: &Instance,
    engine: &Engine,
    context: &str,
) -> usize {
    let assignment = engine.assignment();
    let oracle = Subproblem::new(instance, assignment);
    let view = state.view(instance, assignment);
    assert_eq!(view.path_cost(), oracle.path_cost(), "{context}: path cost");
    assert_eq!(view.active(), oracle.active(), "{context}: active entries");
    let mut compared = 0;
    for e in view.active() {
        let i = e.index as usize;
        let fresh: Vec<_> = oracle.free_terms(i).collect();
        let incr: Vec<_> = view.free_terms(i).collect();
        assert_eq!(incr, fresh, "{context}: free terms of constraint {i}");
        let fresh_false: Vec<Lit> = oracle.false_literals(i).collect();
        let incr_false: Vec<Lit> = view.false_literals(i).collect();
        assert_eq!(incr_false, fresh_false, "{context}: false literals of constraint {i}");
        compared += 1;
    }
    compared
}

/// Drives the engine through a random decide/propagate/backjump walk,
/// checking the state against the rebuild oracle at every quiescent
/// point.
fn random_walk(instance: &Instance, walk_seed: u64, steps: usize) {
    let mut engine = Engine::new(instance.num_vars());
    for c in instance.constraints() {
        engine
            .add_constraint(c)
            .expect("walk instances must be root-consistent, or the walk tests nothing");
    }
    let mut state = ResidualState::new(instance);
    let obs = engine.register_trail_observer();
    let mut rng = ChaCha8Rng::seed_from_u64(walk_seed);
    // Also feed both view flavours to warm-started bound procedures: they
    // must stay in lockstep along the whole walk.
    let mut mis = MisBound::new();
    let mut lgr_incr = LagrangianBound::new(instance.num_constraints());
    let mut lgr_reb = LagrangianBound::new(instance.num_constraints());
    let mut lpr_incr = LprBound::new(instance);
    let mut lpr_reb = LprBound::new(instance);

    for step in 0..steps {
        let roll = rng.gen_range(0u32..10);
        if roll < 6 {
            // Decide a random unassigned literal (if any).
            let unassigned: Vec<usize> = (0..instance.num_vars())
                .filter(|&v| engine.assignment().value(pbo_core::Var::new(v)) == Value::Unassigned)
                .collect();
            if unassigned.is_empty() {
                engine.backjump_to(0);
                continue;
            }
            let v = unassigned[rng.gen_range(0..unassigned.len())];
            engine.decide(pbo_core::Var::new(v).lit(rng.gen_bool(0.5)));
            if let Some(conflict) = engine.propagate() {
                match engine.resolve_conflict(conflict) {
                    Resolution::Unsat => return,
                    Resolution::Backjumped { .. } => {
                        if engine.propagate().is_some() {
                            // Rare cascade; give up on this walk.
                            return;
                        }
                    }
                }
            }
        } else if roll < 9 {
            // Backjump to a random earlier level.
            let level = engine.decision_level();
            if level > 0 {
                engine.backjump_to(rng.gen_range(0..level));
            }
        } else {
            engine.restart();
        }

        sync(&mut state, instance, &mut engine, obs);
        let context = format!("step {step}");
        assert_views_identical(&mut state, instance, &engine, &context);

        // Lower-bound lockstep: identical LbOutcomes through either view.
        let assignment = engine.assignment();
        let oracle = Subproblem::new(instance, assignment);
        let upper = if rng.gen_bool(0.5) { Some(rng.gen_range(1i64..50)) } else { None };
        {
            let view = state.view(instance, assignment);
            let a = mis.lower_bound(&view, upper);
            let b = mis.lower_bound(&oracle, upper);
            assert_eq!(a, b, "{context}: MIS outcome diverged");
        }
        {
            let view = state.view(instance, assignment);
            let a = lgr_incr.lower_bound(&view, upper);
            let b = lgr_reb.lower_bound(&oracle, upper);
            assert_eq!(a, b, "{context}: LGR outcome diverged");
            assert_eq!(
                lgr_incr.multipliers(),
                lgr_reb.multipliers(),
                "{context}: LGR warm-start state diverged"
            );
        }
        {
            let view = state.view(instance, assignment);
            let a = lpr_incr.lower_bound(&view, upper);
            let b = lpr_reb.lower_bound(&oracle, upper);
            assert_eq!(a, b, "{context}: LPR outcome diverged");
        }
    }
}

/// Covering-style random instances (all-positive constraints, like the
/// paper's benchmark families): never root-inconsistent, so every walk
/// actually runs.
fn monotone_params(vars: usize, constraints: usize, arity: (usize, usize)) -> RandomParams {
    RandomParams {
        vars,
        constraints,
        arity,
        coeff: (1, 4),
        positive_bias: 1.0,
        optimization: true,
        ..RandomParams::default()
    }
}

/// Mixed-polarity instance with weakly forcing constraints (small rhs),
/// built locally so negative literals inside constraints are exercised
/// without making the root inconsistent.
fn mixed_polarity_instance(seed: u64) -> Instance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x3141);
    let n = 16usize;
    let mut b = pbo_core::InstanceBuilder::new();
    let vars = b.new_vars(n);
    for _ in 0..24 {
        let k = rng.gen_range(3usize..6);
        let mut idxs: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            idxs.swap(i, j);
        }
        let terms: Vec<(i64, Lit)> = idxs[..k]
            .iter()
            .map(|&i| (rng.gen_range(1i64..4), vars[i].lit(rng.gen_bool(0.6))))
            .collect();
        // rhs at most 2: constraints never force anything at the root.
        let rhs = rng.gen_range(1i64..=2);
        b.add_linear(terms, pbo_core::RelOp::Ge, rhs);
    }
    b.minimize(vars.iter().map(|v| (rng.gen_range(0i64..8), v.lit(rng.gen_bool(0.7)))));
    b.build().expect("weakly constrained instances always build")
}

/// Rebuilds the dynamic-row registry for a fake incumbent of cost
/// `upper`: the eq. 10 objective cut plus a couple of random
/// promoted-clause rows, like a solver re-root does.
fn reroot_rows(rows: &mut DynamicRows, instance: &Instance, upper: i64, rng: &mut ChaCha8Rng) {
    rows.begin_epoch();
    if let Some(obj) = instance.objective() {
        let rhs = upper - 1 - obj.offset();
        if let Ok(cs) = normalize(obj.terms(), RelOp::Le, rhs) {
            for c in cs {
                rows.push(c, DynRowOrigin::ObjectiveCut);
            }
        }
    }
    let n = instance.num_vars();
    for _ in 0..rng.gen_range(0..3) {
        let k = rng.gen_range(2..=3.min(n));
        let mut idxs: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            idxs.swap(i, j);
        }
        let lits: Vec<Lit> =
            idxs[..k].iter().map(|&i| pbo_core::Var::new(i).lit(rng.gen_bool(0.5))).collect();
        rows.push(pbo_core::PbConstraint::clause(lits), DynRowOrigin::PromotedClause);
    }
}

/// The dynamic-row analogue of `random_walk`: the engine walks randomly
/// while incumbent re-roots swap the dynamic-row region mid-trail (and
/// occasionally clear it); at every quiescent point the incremental
/// view must match the `Subproblem::with_rows` rebuild oracle in every
/// observable dimension — free terms and false literals of dynamic rows
/// included — and every warm-started bound procedure must return
/// identical `LbOutcome`s through either view.
fn random_walk_with_dynamic_rows(instance: &Instance, walk_seed: u64, steps: usize) {
    let mut engine = Engine::new(instance.num_vars());
    for c in instance.constraints() {
        engine.add_constraint(c).expect("walk instances must be root-consistent");
    }
    let mut state = ResidualState::new(instance);
    let obs = engine.register_trail_observer();
    let mut rng = ChaCha8Rng::seed_from_u64(walk_seed);
    let mut rows = DynamicRows::for_instance(instance);
    let mut mis = MisBound::new();
    let mut lgr_incr = LagrangianBound::new(instance.num_constraints());
    let mut lgr_reb = LagrangianBound::new(instance.num_constraints());
    let mut lpr_incr = LprBound::new(instance);
    let mut lpr_reb = LprBound::new(instance);

    for step in 0..steps {
        let roll = rng.gen_range(0u32..12);
        if roll < 5 {
            let unassigned: Vec<usize> = (0..instance.num_vars())
                .filter(|&v| engine.assignment().value(pbo_core::Var::new(v)) == Value::Unassigned)
                .collect();
            if unassigned.is_empty() {
                engine.backjump_to(0);
                continue;
            }
            let v = unassigned[rng.gen_range(0..unassigned.len())];
            engine.decide(pbo_core::Var::new(v).lit(rng.gen_bool(0.5)));
            if let Some(conflict) = engine.propagate() {
                match engine.resolve_conflict(conflict) {
                    Resolution::Unsat => return,
                    Resolution::Backjumped { .. } => {
                        if engine.propagate().is_some() {
                            return;
                        }
                    }
                }
            }
        } else if roll < 8 {
            let level = engine.decision_level();
            if level > 0 {
                engine.backjump_to(rng.gen_range(0..level));
            }
        } else if roll < 10 {
            // Incumbent re-root at the current (arbitrary) trail depth:
            // swap the dynamic-row region, sometimes to empty.
            if rng.gen_bool(0.25) {
                rows.begin_epoch();
            } else {
                let upper = rng.gen_range(2i64..60);
                reroot_rows(&mut rows, instance, upper, &mut rng);
            }
            state.set_dynamic_rows(&rows);
            lpr_incr.install_rows(instance, &rows);
            lpr_reb.install_rows(instance, &rows);
        } else {
            engine.restart();
        }

        sync(&mut state, instance, &mut engine, obs);
        let context = format!("dyn step {step}");
        // Views must agree entry-by-entry, dynamic rows included.
        let assignment = engine.assignment();
        let oracle = Subproblem::with_rows(instance, assignment, &rows);
        {
            let view = state.view(instance, assignment);
            assert_eq!(view.path_cost(), oracle.path_cost(), "{context}: path cost");
            assert_eq!(view.active(), oracle.active(), "{context}: active entries");
            for e in view.active() {
                let i = e.index as usize;
                let fresh: Vec<_> = oracle.free_terms(i).collect();
                let incr: Vec<_> = view.free_terms(i).collect();
                assert_eq!(incr, fresh, "{context}: free terms of row {i}");
                let fresh_false: Vec<Lit> = oracle.false_literals(i).collect();
                let incr_false: Vec<Lit> = view.false_literals(i).collect();
                assert_eq!(incr_false, fresh_false, "{context}: false literals of row {i}");
            }
        }
        // Lower-bound lockstep through either view.
        let upper = if rng.gen_bool(0.5) { Some(rng.gen_range(1i64..50)) } else { None };
        {
            let view = state.view(instance, assignment);
            let a = mis.lower_bound(&view, upper);
            let b = mis.lower_bound(&oracle, upper);
            assert_eq!(a, b, "{context}: MIS outcome diverged");
        }
        {
            let view = state.view(instance, assignment);
            let a = lgr_incr.lower_bound(&view, upper);
            let b = lgr_reb.lower_bound(&oracle, upper);
            assert_eq!(a, b, "{context}: LGR outcome diverged");
            assert_eq!(
                lgr_incr.multipliers(),
                lgr_reb.multipliers(),
                "{context}: LGR warm-start state diverged"
            );
        }
        {
            let view = state.view(instance, assignment);
            let a = lpr_incr.lower_bound(&view, upper);
            let b = lpr_reb.lower_bound(&oracle, upper);
            assert_eq!(a, b, "{context}: LPR outcome diverged");
        }
    }
}

/// The CSR-vs-constraint-layout differential: the flat SoA arena the
/// incremental hot path reads must mirror the per-constraint `Vec`
/// storage (the PR-3 layout, still used by normalization, I/O and the
/// engine loader) term for term, and the occurrence CSR must list
/// exactly the occurrences a per-literal list build would.
fn assert_arena_mirrors_constraints(instance: &Instance) {
    let arena = instance.arena();
    assert_eq!(arena.num_rows(), instance.num_constraints());
    assert_eq!(arena.num_terms(), instance.num_terms());
    let mut occ_oracle: Vec<Vec<(u32, i64)>> = vec![Vec::new(); 2 * instance.num_vars()];
    for (ci, c) in instance.constraints().iter().enumerate() {
        assert_eq!(arena.rhs(ci), c.rhs(), "rhs of row {ci}");
        assert_eq!(arena.row_len(ci), c.len(), "length of row {ci}");
        let arena_terms: Vec<_> = arena.row(ci).terms().collect();
        assert_eq!(arena_terms, c.terms().to_vec(), "terms of row {ci}");
        for t in c.terms() {
            occ_oracle[t.lit.code()].push((ci as u32, t.coeff));
        }
    }
    for (code, oracle) in occ_oracle.iter().enumerate() {
        let lit = Lit::from_code(code);
        let (rows, coeffs) = arena.occurrences(lit);
        let got: Vec<(u32, i64)> = rows.iter().copied().zip(coeffs.iter().copied()).collect();
        assert_eq!(&got, oracle, "occurrences of literal code {code}");
    }
}

#[test]
fn term_arena_mirrors_constraint_storage() {
    for seed in 0..4u64 {
        assert_arena_mirrors_constraints(&monotone_params(20, 28, (2, 6)).generate(seed));
        assert_arena_mirrors_constraints(&mixed_polarity_instance(seed));
    }
}

#[test]
fn residual_state_matches_rebuild_on_random_walks() {
    for seed in 0..6u64 {
        let instance = monotone_params(18, 26, (2, 6)).generate(seed);
        random_walk(&instance, 0x5eed ^ seed, 60);
    }
}

#[test]
fn residual_state_matches_rebuild_on_pb_heavy_instances() {
    for seed in 0..4u64 {
        let instance = monotone_params(24, 30, (4, 8)).generate(seed);
        random_walk(&instance, 0xabcd ^ seed, 50);
    }
}

#[test]
fn residual_state_matches_rebuild_with_negative_literals() {
    for seed in 0..5u64 {
        let instance = mixed_polarity_instance(seed);
        random_walk(&instance, 0x1dea ^ seed, 60);
    }
}

#[test]
fn residual_state_matches_rebuild_on_satisfaction_instances() {
    // No objective: path cost stays at zero, active tracking still must
    // agree.
    for seed in 0..3u64 {
        let instance =
            RandomParams { optimization: false, ..monotone_params(16, 22, (2, 5)) }.generate(seed);
        random_walk(&instance, 0x7777 ^ seed, 40);
    }
}

#[test]
fn dynamic_rows_match_rebuild_on_random_walks() {
    for seed in 0..6u64 {
        let instance = monotone_params(16, 22, (2, 6)).generate(seed);
        random_walk_with_dynamic_rows(&instance, 0xd1a ^ seed, 70);
    }
}

#[test]
fn dynamic_rows_match_rebuild_with_negative_literals() {
    for seed in 0..4u64 {
        let instance = mixed_polarity_instance(seed);
        random_walk_with_dynamic_rows(&instance, 0xd0d0 ^ seed, 60);
    }
}

#[test]
fn dynamic_row_region_swaps_mid_trail_and_unwinds_exactly() {
    // Install a region deep in the trail, unwind below the installation
    // point, re-apply — counters must track through the whole cycle.
    let instance = monotone_params(14, 18, (2, 5)).generate(7);
    let mut engine = Engine::new(instance.num_vars());
    for c in instance.constraints() {
        engine.add_constraint(c).expect("root-consistent");
    }
    let mut state = ResidualState::new(&instance);
    let obs = engine.register_trail_observer();
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let mut rows = DynamicRows::for_instance(&instance);

    // Descend a few levels.
    for _ in 0..5 {
        let unassigned: Vec<usize> = (0..instance.num_vars())
            .filter(|&v| engine.assignment().value(pbo_core::Var::new(v)) == Value::Unassigned)
            .collect();
        let Some(&v) = unassigned.first() else { break };
        engine.decide(pbo_core::Var::new(v).lit(rng.gen_bool(0.5)));
        if engine.propagate().is_some() {
            break;
        }
    }
    sync(&mut state, &instance, &mut engine, obs);
    // Re-root mid-trail.
    reroot_rows(&mut rows, &instance, 25, &mut rng);
    state.set_dynamic_rows(&rows);
    assert_eq!(state.num_dynamic_rows(), rows.len());
    assert_eq!(state.dynamic_epoch(), rows.epoch());
    let oracle = Subproblem::with_rows(&instance, engine.assignment(), &rows);
    assert_eq!(state.view(&instance, engine.assignment()).active(), oracle.active(), "mid-trail");
    // Unwind everything (below the installation point) and compare.
    engine.backjump_to(0);
    sync(&mut state, &instance, &mut engine, obs);
    let oracle = Subproblem::with_rows(&instance, engine.assignment(), &rows);
    assert_eq!(state.view(&instance, engine.assignment()).active(), oracle.active(), "at root");
    // Swapping to an empty epoch restores the static-only view.
    rows.begin_epoch();
    state.set_dynamic_rows(&rows);
    let oracle = Subproblem::new(&instance, engine.assignment());
    assert_eq!(state.view(&instance, engine.assignment()).active(), oracle.active(), "cleared");
}

#[test]
fn implied_mis_soundness_on_small_random_instances() {
    // Property pinned for the implied-literal upgrade: through the
    // incremental view, with genuine cost cuts installed for an upper
    // bound strictly above the optimum, the MIS bound must never exceed
    // the optimum (an improving completion exists, so pruning it away —
    // bound >= upper or an infeasibility verdict — would be unsound).
    let mut rng = ChaCha8Rng::seed_from_u64(0x6006);
    for round in 0..40u64 {
        let n = rng.gen_range(4..9) as usize;
        let mut b = pbo_core::InstanceBuilder::new();
        let vars = b.new_vars(n);
        for _ in 0..rng.gen_range(2..6) {
            let k = rng.gen_range(2..=3.min(n));
            let mut idxs: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                idxs.swap(i, j);
            }
            let terms: Vec<(i64, Lit)> = idxs[..k]
                .iter()
                .map(|&i| (rng.gen_range(1i64..4), vars[i].lit(rng.gen_bool(0.8))))
                .collect();
            let maxw: i64 = terms.iter().map(|t| t.0).sum();
            b.add_linear(terms, RelOp::Ge, rng.gen_range(1..=maxw));
        }
        b.minimize(vars.iter().map(|v| (rng.gen_range(0i64..6), v.positive())));
        let inst = b.build().unwrap();
        let Some(opt) = brute_force(&inst).cost() else { continue };
        let upper = opt + rng.gen_range(1i64..5);
        let mut rows = DynamicRows::for_instance(&inst);
        reroot_rows(&mut rows, &inst, upper, &mut rng);
        // Promoted clauses from reroot_rows are random, not implied:
        // keep only the genuine objective cut for the soundness claim.
        let mut genuine = DynamicRows::for_instance(&inst);
        genuine.begin_epoch();
        if let Some(obj) = inst.objective() {
            if let Ok(cs) = normalize(obj.terms(), RelOp::Le, upper - 1 - obj.offset()) {
                for c in cs {
                    genuine.push(c, DynRowOrigin::ObjectiveCut);
                }
            }
        }
        let mut state = ResidualState::new(&inst);
        state.set_dynamic_rows(&genuine);
        let assignment = pbo_core::Assignment::new(n);
        let view = state.view(&inst, &assignment);
        let out = MisBound::new().lower_bound(&view, Some(upper));
        assert!(!out.infeasible, "round {round}: spurious infeasibility (opt {opt} < {upper})");
        assert!(
            out.bound <= opt,
            "round {round}: bound {} exceeds optimum {opt} (upper {upper})",
            out.bound
        );
        // And with no upper, the bound is a plain lower bound on the
        // optimum (no dynamic rows installed pre-incumbent).
        let mut bare = ResidualState::new(&inst);
        let bare_view = bare.view(&inst, &assignment);
        let out = MisBound::new().lower_bound(&bare_view, None);
        assert!(!out.infeasible, "round {round}: bare infeasibility");
        assert!(out.bound <= opt, "round {round}: bare bound {} > {opt}", out.bound);
    }
}

#[test]
fn push_time_dynamic_cover_order_matches_the_per_call_sort() {
    // PR-5 satellite: the fractional-cover sort of dynamic rows moved
    // from per-bound-call (the old MIS materialization path) to
    // `RowsArena::push_row`. The precomputed order must equal the order
    // the old path computed — ascending `lit_cost / coeff`, ties broken
    // by term position — on every row, for random rows and objectives.
    let mut rng = ChaCha8Rng::seed_from_u64(0xc0de);
    for round in 0..30u64 {
        let instance = if round % 2 == 0 {
            monotone_params(14, 18, (2, 6)).generate(round)
        } else {
            mixed_polarity_instance(round)
        };
        let mut rows = DynamicRows::for_instance(&instance);
        let upper = rng.gen_range(5i64..80);
        reroot_rows(&mut rows, &instance, upper, &mut rng);
        let lit_cost = |l: Lit| instance.objective().map_or(0, |o| o.cost_of_lit(l));
        let arena = rows.arena();
        for (k, row) in rows.rows().iter().enumerate() {
            // The old per-call path: stable ratio sort over the row's
            // terms (position tie-break on an unstable sort).
            let mut oracle: Vec<(f64, u32)> = row
                .constraint
                .terms()
                .iter()
                .enumerate()
                .map(|(i, t)| (lit_cost(t.lit) as f64 / t.coeff as f64, i as u32))
                .collect();
            oracle.sort_unstable_by(|a, b| {
                a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
            });
            let base = arena.cover_order(k).iter().min().copied().unwrap_or(0);
            let got: Vec<u32> = arena.cover_order(k).iter().map(|&p| p - base).collect();
            let want: Vec<u32> = oracle.iter().map(|&(_, i)| i).collect();
            assert_eq!(got, want, "round {round}: cover order of dynamic row {k}");
        }
    }
}

#[test]
fn deep_backjump_after_long_descent_resyncs_in_one_step() {
    // A long descent followed by a jump straight back to the root is the
    // worst case for the watermark protocol: everything unwinds.
    let instance = monotone_params(20, 24, (2, 5)).generate(3);
    let mut engine = Engine::new(instance.num_vars());
    for c in instance.constraints() {
        engine.add_constraint(c).expect("monotone instances are root-consistent");
    }
    let mut state = ResidualState::new(&instance);
    let obs = engine.register_trail_observer();
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    for _ in 0..instance.num_vars() {
        let unassigned: Vec<usize> = (0..instance.num_vars())
            .filter(|&v| engine.assignment().value(pbo_core::Var::new(v)) == Value::Unassigned)
            .collect();
        let Some(&v) = unassigned.first() else { break };
        engine.decide(pbo_core::Var::new(v).lit(rng.gen_bool(0.5)));
        if engine.propagate().is_some() {
            break;
        }
    }
    sync(&mut state, &instance, &mut engine, obs);
    assert_views_identical(&mut state, &instance, &engine, "after descent");
    let deep_len = state.len();
    engine.backjump_to(0);
    sync(&mut state, &instance, &mut engine, obs);
    assert!(state.len() <= deep_len);
    assert_views_identical(&mut state, &instance, &engine, "after root backjump");
    assert!(
        state.stats.unwound >= deep_len as u64 - engine.trail_len() as u64,
        "everything above the root must have been unwound"
    );
}
