//! Residual view of an instance under a partial assignment.
//!
//! The lower-bounding procedures (sec. 3 of the paper) operate on the
//! constraints *not yet satisfied* by the current assignments, with
//! satisfied weight removed and false literals dropped. [`Subproblem`]
//! materializes that view once per bound computation.

use pbo_core::{Assignment, ConstraintState, Instance, Lit, PbTerm, Value};

/// One active (unsatisfied, undetermined) constraint of the residual
/// problem.
#[derive(Clone, Debug)]
pub struct ActiveConstraint {
    /// Index of the constraint in the original instance.
    pub index: usize,
    /// Right-hand side still to be covered by free literals
    /// (`rhs - weight of true literals`), always `>= 1`.
    pub residual_rhs: i64,
    /// The unassigned literals of the constraint with their coefficients.
    pub free_terms: Vec<PbTerm>,
}

/// The residual optimization problem under a partial assignment.
///
/// # Examples
///
/// ```
/// use pbo_core::{Assignment, InstanceBuilder, Var};
/// use pbo_bounds::Subproblem;
///
/// let mut b = InstanceBuilder::new();
/// let v = b.new_vars(3);
/// b.add_at_least(2, v.iter().map(|x| x.positive()));
/// b.minimize(v.iter().map(|x| (1, x.positive())));
/// let inst = b.build()?;
///
/// let mut a = Assignment::new(3);
/// a.assign(Var::new(0), true);
/// let sub = Subproblem::new(&inst, &a);
/// assert_eq!(sub.path_cost(), 1);
/// assert_eq!(sub.active().len(), 1);
/// assert_eq!(sub.active()[0].residual_rhs, 1); // one more literal needed
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
#[derive(Debug)]
pub struct Subproblem<'a> {
    instance: &'a Instance,
    assignment: &'a Assignment,
    path_cost: i64,
    active: Vec<ActiveConstraint>,
}

impl<'a> Subproblem<'a> {
    /// Builds the residual view. Constraints already satisfied are
    /// dropped; violated constraints are kept as active with their
    /// (unreachable) residual — callers run after propagation, so violated
    /// constraints normally cannot occur.
    pub fn new(instance: &'a Instance, assignment: &'a Assignment) -> Subproblem<'a> {
        let path_cost = instance
            .objective()
            .map_or(0, |o| o.path_cost(assignment));
        let mut active = Vec::new();
        for (index, c) in instance.constraints().iter().enumerate() {
            match c.eval(assignment) {
                ConstraintState::Satisfied => continue,
                ConstraintState::Violated | ConstraintState::Undetermined => {
                    let mut satisfied_weight = 0i64;
                    let mut free_terms = Vec::new();
                    for t in c.terms() {
                        match assignment.lit_value(t.lit) {
                            Value::True => satisfied_weight += t.coeff,
                            Value::False => {}
                            Value::Unassigned => free_terms.push(*t),
                        }
                    }
                    let residual_rhs = c.rhs() - satisfied_weight;
                    debug_assert!(residual_rhs >= 1, "satisfied constraint slipped through");
                    active.push(ActiveConstraint { index, residual_rhs, free_terms });
                }
            }
        }
        Subproblem { instance, assignment, path_cost, active }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance {
        self.instance
    }

    /// The current partial assignment.
    pub fn assignment(&self) -> &Assignment {
        self.assignment
    }

    /// The paper's `P.path`: cost already incurred by true literals
    /// (objective offset included).
    pub fn path_cost(&self) -> i64 {
        self.path_cost
    }

    /// Active (unsatisfied) constraints of the residual problem.
    pub fn active(&self) -> &[ActiveConstraint] {
        &self.active
    }

    /// Cost incurred if `lit` were assigned true, according to the
    /// objective (0 for unweighted literals).
    pub fn lit_cost(&self, lit: Lit) -> i64 {
        self.instance.objective().map_or(0, |o| o.cost_of_lit(lit))
    }

    /// The literals of the original constraint `index` currently assigned
    /// false — the building block of the paper's `omega_pl` (eq. 9).
    pub fn false_literals_of(&self, index: usize) -> Vec<Lit> {
        self.instance.constraints()[index]
            .terms()
            .iter()
            .map(|t| t.lit)
            .filter(|&l| self.assignment.lit_value(l) == Value::False)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::{InstanceBuilder, Var};

    #[test]
    fn satisfied_constraints_are_dropped() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_clause([v[1].positive(), v[2].positive()]);
        let inst = b.build().unwrap();
        let mut a = Assignment::new(3);
        a.assign(Var::new(0), true);
        let sub = Subproblem::new(&inst, &a);
        assert_eq!(sub.active().len(), 1);
        assert_eq!(sub.active()[0].index, 1);
    }

    #[test]
    fn residual_rhs_subtracts_true_weight() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_linear(
            vec![(3, v[0].positive()), (2, v[1].positive()), (2, v[2].positive())],
            pbo_core::RelOp::Ge,
            5,
        );
        let inst = b.build().unwrap();
        let mut a = Assignment::new(3);
        a.assign(Var::new(0), true);
        let sub = Subproblem::new(&inst, &a);
        assert_eq!(sub.active()[0].residual_rhs, 2);
        assert_eq!(sub.active()[0].free_terms.len(), 2);
    }

    #[test]
    fn false_literals_listed_per_constraint() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_clause([v[0].positive(), v[1].negative(), v[2].positive()]);
        let inst = b.build().unwrap();
        let mut a = Assignment::new(3);
        a.assign(Var::new(0), false);
        a.assign(Var::new(1), true);
        let sub = Subproblem::new(&inst, &a);
        let mut fl = sub.false_literals_of(0);
        fl.sort();
        assert_eq!(fl, vec![v[0].positive(), v[1].negative()]);
    }

    #[test]
    fn path_cost_tracks_true_costed_literals() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.minimize([(3, v[0].positive()), (4, v[1].negative())]);
        let inst = b.build().unwrap();
        let mut a = Assignment::new(2);
        a.assign(Var::new(0), true);
        a.assign(Var::new(1), false); // ~x2 true: costs 4
        let sub = Subproblem::new(&inst, &a);
        assert_eq!(sub.path_cost(), 7);
        assert_eq!(sub.lit_cost(v[1].negative()), 4);
        assert_eq!(sub.lit_cost(v[1].positive()), 0);
    }

    #[test]
    fn empty_assignment_keeps_all_constraints() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_clause([v[0].positive()]);
        b.add_clause([v[1].positive()]);
        let inst = b.build().unwrap();
        let a = Assignment::new(2);
        let sub = Subproblem::new(&inst, &a);
        assert_eq!(sub.active().len(), 2);
        assert_eq!(sub.path_cost(), 0);
    }
}
