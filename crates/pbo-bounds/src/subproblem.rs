//! Residual view of an instance under a partial assignment.
//!
//! The lower-bounding procedures (sec. 3 of the paper) operate on the
//! constraints *not yet satisfied* by the current assignments, with
//! satisfied weight removed and false literals dropped. [`Subproblem`] is
//! that view. It can be produced two ways:
//!
//! * [`Subproblem::new`] — **rebuild**: re-scan every constraint and
//!   every term, O(instance size). This is the paper's (and the seed
//!   implementation's) behaviour, retained as the differential-testing
//!   oracle;
//! * [`ResidualState::view`](crate::ResidualState::view) —
//!   **incremental**: the per-constraint counters are maintained along
//!   the solver's trail in O(occurrences of the changed variable) per
//!   assignment, and producing the view costs O(active constraints),
//!   never touching satisfied constraints or their terms.
//!
//! Either way the view is identical: the same active set in the same
//! (ascending-index) order, the same residual right-hand sides, free-term
//! counts and path cost — a property pinned by differential tests.
//!
//! Term access goes through the instance's flat CSR/SoA
//! [`TermArena`](pbo_core::TermArena) (and the dynamic-row region's
//! [`RowsArena`](crate::RowsArena)): [`Subproblem::row_terms`] returns
//! borrowed coefficient/literal slices, so iterating the terms of
//! consecutive rows is a linear walk over two contiguous arrays instead
//! of a pointer chase through per-constraint heap blocks.

use pbo_core::{Assignment, ConstraintState, Instance, Lit, PbTerm, RowView, Value};

use crate::dynrows::{DynamicRows, RowsArena, EMPTY_ROWS};

/// One active (unsatisfied, undetermined) constraint of the residual
/// problem.
///
/// The free terms themselves are not materialized: iterate them with
/// [`Subproblem::free_terms`], which filters the original constraint's
/// terms through the assignment without allocating.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ActiveEntry {
    /// Index of the constraint in the original instance.
    pub index: u32,
    /// Right-hand side still to be covered by free literals
    /// (`rhs - weight of true literals`), always `>= 1`.
    pub residual_rhs: i64,
    /// Number of unassigned literals left in the constraint.
    pub free_count: u32,
}

enum ActiveSlice<'a> {
    Owned(Vec<ActiveEntry>),
    Borrowed(&'a [ActiveEntry]),
}

/// The residual optimization problem under a partial assignment.
///
/// # Examples
///
/// ```
/// use pbo_core::{Assignment, InstanceBuilder, Var};
/// use pbo_bounds::Subproblem;
///
/// let mut b = InstanceBuilder::new();
/// let v = b.new_vars(3);
/// b.add_at_least(2, v.iter().map(|x| x.positive()));
/// b.minimize(v.iter().map(|x| (1, x.positive())));
/// let inst = b.build()?;
///
/// let mut a = Assignment::new(3);
/// a.assign(Var::new(0), true);
/// let sub = Subproblem::new(&inst, &a);
/// assert_eq!(sub.path_cost(), 1);
/// assert_eq!(sub.active().len(), 1);
/// assert_eq!(sub.active()[0].residual_rhs, 1); // one more literal needed
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
pub struct Subproblem<'a> {
    instance: &'a Instance,
    assignment: &'a Assignment,
    path_cost: i64,
    active: ActiveSlice<'a>,
    /// Dense per-literal objective costs, available when the view comes
    /// from a [`ResidualState`](crate::ResidualState) (O(1) `lit_cost`).
    costs: Option<&'a [i64]>,
    /// Dynamic rows of the view (flat SoA region); active entries with
    /// `index >= instance.num_constraints()` refer to these.
    dyn_rows: &'a RowsArena,
}

impl<'a> Subproblem<'a> {
    /// Builds the residual view by re-scanning the whole instance.
    /// Constraints already satisfied are dropped; violated constraints
    /// are kept as active with their (unreachable) residual — callers run
    /// after propagation, so violated constraints normally cannot occur.
    pub fn new(instance: &'a Instance, assignment: &'a Assignment) -> Subproblem<'a> {
        Self::rebuild(instance, assignment, &EMPTY_ROWS)
    }

    /// Like [`Subproblem::new`], but the residual problem additionally
    /// contains the given dynamic rows (learned cost cuts, promoted
    /// clauses), appended after the instance constraints in registry
    /// order — the rebuild oracle for
    /// [`ResidualState::set_dynamic_rows`](crate::ResidualState::set_dynamic_rows).
    pub fn with_rows(
        instance: &'a Instance,
        assignment: &'a Assignment,
        rows: &'a DynamicRows,
    ) -> Subproblem<'a> {
        Self::rebuild(instance, assignment, rows.arena())
    }

    /// Evaluates one row given its terms and right-hand side, pushing an
    /// active entry if it is not satisfied.
    fn scan_row(
        assignment: &Assignment,
        index: usize,
        row: RowView<'_>,
        rhs: i64,
        active: &mut Vec<ActiveEntry>,
    ) {
        let mut satisfied_weight = 0i64;
        let mut free_count = 0u32;
        for t in row.terms() {
            match assignment.lit_value(t.lit) {
                Value::True => satisfied_weight += t.coeff,
                Value::False => {}
                Value::Unassigned => free_count += 1,
            }
        }
        if satisfied_weight >= rhs {
            return;
        }
        let residual_rhs = rhs - satisfied_weight;
        debug_assert!(residual_rhs >= 1, "satisfied constraint slipped through");
        active.push(ActiveEntry { index: index as u32, residual_rhs, free_count });
    }

    fn rebuild(
        instance: &'a Instance,
        assignment: &'a Assignment,
        dyn_rows: &'a RowsArena,
    ) -> Subproblem<'a> {
        let path_cost = instance.objective().map_or(0, |o| o.path_cost(assignment));
        let mut active = Vec::new();
        for (index, c) in instance.constraints().iter().enumerate() {
            match c.eval(assignment) {
                ConstraintState::Satisfied => continue,
                ConstraintState::Violated | ConstraintState::Undetermined => Self::scan_row(
                    assignment,
                    index,
                    instance.arena().row(index),
                    c.rhs(),
                    &mut active,
                ),
            }
        }
        let num_static = instance.num_constraints();
        for k in 0..dyn_rows.len() {
            Self::scan_row(
                assignment,
                num_static + k,
                dyn_rows.row(k),
                dyn_rows.rhs(k),
                &mut active,
            );
        }
        Subproblem {
            instance,
            assignment,
            path_cost,
            active: ActiveSlice::Owned(active),
            costs: None,
            dyn_rows,
        }
    }

    /// Assembles a view (without dynamic rows) from *externally*
    /// maintained parts: the hook for alternative residual-state
    /// implementations — in-tree, the frozen PR-3 layout the
    /// `bound_kernels` microbenchmark measures against. `active` must be
    /// in ascending row order and `costs` dense per literal code, with
    /// the same invariants [`ResidualState`](crate::ResidualState)
    /// maintains.
    pub fn from_maintained_parts(
        instance: &'a Instance,
        assignment: &'a Assignment,
        path_cost: i64,
        active: &'a [ActiveEntry],
        costs: &'a [i64],
    ) -> Subproblem<'a> {
        Subproblem {
            instance,
            assignment,
            path_cost,
            active: ActiveSlice::Borrowed(active),
            costs: Some(costs),
            dyn_rows: &EMPTY_ROWS,
        }
    }

    /// Assembles a view from already-maintained parts (the incremental
    /// path; see [`ResidualState::view`](crate::ResidualState::view)).
    pub(crate) fn from_parts(
        instance: &'a Instance,
        assignment: &'a Assignment,
        path_cost: i64,
        active: &'a [ActiveEntry],
        costs: &'a [i64],
        dyn_rows: &'a RowsArena,
    ) -> Subproblem<'a> {
        Subproblem {
            instance,
            assignment,
            path_cost,
            active: ActiveSlice::Borrowed(active),
            costs: Some(costs),
            dyn_rows,
        }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance {
        self.instance
    }

    /// The current partial assignment.
    pub fn assignment(&self) -> &Assignment {
        self.assignment
    }

    /// The paper's `P.path`: cost already incurred by true literals
    /// (objective offset included).
    pub fn path_cost(&self) -> i64 {
        self.path_cost
    }

    /// Active (unsatisfied) constraints of the residual problem, in
    /// ascending constraint-index order.
    pub fn active(&self) -> &[ActiveEntry] {
        match &self.active {
            ActiveSlice::Owned(v) => v,
            ActiveSlice::Borrowed(s) => s,
        }
    }

    /// Cost incurred if `lit` were assigned true, according to the
    /// objective (0 for unweighted literals).
    pub fn lit_cost(&self, lit: Lit) -> i64 {
        match self.costs {
            Some(costs) => costs[lit.code()],
            None => self.instance.objective().map_or(0, |o| o.cost_of_lit(lit)),
        }
    }

    /// Number of static (instance) rows; active entries with an index at
    /// or above this refer to dynamic rows.
    #[inline]
    pub fn num_static_rows(&self) -> usize {
        self.instance.num_constraints()
    }

    /// The dynamic rows of this view as a flat SoA region (empty unless
    /// the view was produced with dynamic rows installed).
    pub fn dynamic_rows(&self) -> &RowsArena {
        self.dyn_rows
    }

    /// The terms of row `index` — a static instance constraint for
    /// `index < num_static_rows()`, a dynamic row otherwise — as
    /// parallel coefficient/literal slices borrowed from the flat
    /// arenas.
    #[inline]
    pub fn row_terms(&self, index: usize) -> RowView<'a> {
        let num_static = self.instance.num_constraints();
        if index < num_static {
            self.instance.arena().row(index)
        } else {
            self.dyn_rows.row(index - num_static)
        }
    }

    /// The unassigned terms of row `index` (static or dynamic), in
    /// original term order, without materializing them.
    pub fn free_terms(&self, index: usize) -> impl Iterator<Item = PbTerm> + '_ {
        self.row_terms(index)
            .terms()
            .filter(|t| self.assignment.lit_value(t.lit) == Value::Unassigned)
    }

    /// The literals of row `index` (static or dynamic) currently assigned
    /// false — the building block of the paper's `omega_pl` (eq. 9) —
    /// without materializing them.
    pub fn false_literals(&self, index: usize) -> impl Iterator<Item = Lit> + '_ {
        self.row_terms(index)
            .lits
            .iter()
            .copied()
            .filter(|&l| self.assignment.lit_value(l) == Value::False)
    }

    /// [`Subproblem::false_literals`], collected.
    pub fn false_literals_of(&self, index: usize) -> Vec<Lit> {
        self.false_literals(index).collect()
    }
}

impl std::fmt::Debug for Subproblem<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subproblem")
            .field("path_cost", &self.path_cost)
            .field("active", &self.active())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::{InstanceBuilder, Var};

    #[test]
    fn satisfied_constraints_are_dropped() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_clause([v[1].positive(), v[2].positive()]);
        let inst = b.build().unwrap();
        let mut a = Assignment::new(3);
        a.assign(Var::new(0), true);
        let sub = Subproblem::new(&inst, &a);
        assert_eq!(sub.active().len(), 1);
        assert_eq!(sub.active()[0].index, 1);
    }

    #[test]
    fn residual_rhs_subtracts_true_weight() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_linear(
            vec![(3, v[0].positive()), (2, v[1].positive()), (2, v[2].positive())],
            pbo_core::RelOp::Ge,
            5,
        );
        let inst = b.build().unwrap();
        let mut a = Assignment::new(3);
        a.assign(Var::new(0), true);
        let sub = Subproblem::new(&inst, &a);
        assert_eq!(sub.active()[0].residual_rhs, 2);
        assert_eq!(sub.active()[0].free_count, 2);
        assert_eq!(sub.free_terms(0).count(), 2);
    }

    #[test]
    fn false_literals_listed_per_constraint() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_clause([v[0].positive(), v[1].negative(), v[2].positive()]);
        let inst = b.build().unwrap();
        let mut a = Assignment::new(3);
        a.assign(Var::new(0), false);
        a.assign(Var::new(1), true);
        let sub = Subproblem::new(&inst, &a);
        let mut fl = sub.false_literals_of(0);
        fl.sort();
        assert_eq!(fl, vec![v[0].positive(), v[1].negative()]);
    }

    #[test]
    fn path_cost_tracks_true_costed_literals() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.minimize([(3, v[0].positive()), (4, v[1].negative())]);
        let inst = b.build().unwrap();
        let mut a = Assignment::new(2);
        a.assign(Var::new(0), true);
        a.assign(Var::new(1), false); // ~x2 true: costs 4
        let sub = Subproblem::new(&inst, &a);
        assert_eq!(sub.path_cost(), 7);
        assert_eq!(sub.lit_cost(v[1].negative()), 4);
        assert_eq!(sub.lit_cost(v[1].positive()), 0);
    }

    #[test]
    fn empty_assignment_keeps_all_constraints() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_clause([v[0].positive()]);
        b.add_clause([v[1].positive()]);
        let inst = b.build().unwrap();
        let a = Assignment::new(2);
        let sub = Subproblem::new(&inst, &a);
        assert_eq!(sub.active().len(), 2);
        assert_eq!(sub.path_cost(), 0);
    }

    #[test]
    fn free_terms_preserve_term_order() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(4);
        b.add_linear(
            vec![
                (1, v[0].positive()),
                (2, v[1].positive()),
                (3, v[2].positive()),
                (4, v[3].positive()),
            ],
            pbo_core::RelOp::Ge,
            4,
        );
        let inst = b.build().unwrap();
        let mut a = Assignment::new(4);
        a.assign(Var::new(1), false);
        let sub = Subproblem::new(&inst, &a);
        let coeffs: Vec<i64> = sub.free_terms(0).map(|t| t.coeff).collect();
        assert_eq!(coeffs, vec![1, 3, 4]);
    }

    #[test]
    fn row_terms_borrow_the_arena() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_linear(vec![(2, v[0].positive()), (3, v[1].negative())], pbo_core::RelOp::Ge, 3);
        let inst = b.build().unwrap();
        let a = Assignment::new(2);
        let sub = Subproblem::new(&inst, &a);
        let row = sub.row_terms(0);
        assert_eq!(row.coeffs, inst.arena().row(0).coeffs);
        assert_eq!(row.lits, inst.arena().row(0).lits);
        assert!(sub.dynamic_rows().is_empty());
    }
}
