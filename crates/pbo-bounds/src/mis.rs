//! Lower bounding by a greedy maximum independent set of constraints
//! (MIS), the classic bound for covering problems (Coudert; Villa et al.)
//! and the baseline method of the paper (sec. 3).
//!
//! Constraints that share no *free* variable are independent: the minimum
//! cost of satisfying each can be added up. The per-constraint minimum is
//! itself lower-bounded by the fractional (single-constraint LP) cover
//! cost, which greedy computes exactly by filling cheapest cost-per-unit
//! literals first.
//!
//! The procedure reads the residual problem through the [`Subproblem`]
//! view API (free terms are iterated, never materialized) and keeps its
//! working buffers across calls, so a bound computation performs no
//! allocation beyond the returned explanation.

use pbo_core::Lit;

use crate::subproblem::{ActiveEntry, Subproblem};
use crate::{LbOutcome, LowerBound};

/// Greedy MIS lower bound.
///
/// # Examples
///
/// ```
/// use pbo_core::{Assignment, InstanceBuilder};
/// use pbo_bounds::{LowerBound, MisBound, Subproblem};
///
/// let mut b = InstanceBuilder::new();
/// let v = b.new_vars(4);
/// b.add_clause([v[0].positive(), v[1].positive()]);
/// b.add_clause([v[2].positive(), v[3].positive()]);
/// b.minimize(v.iter().map(|x| (2, x.positive())));
/// let inst = b.build()?;
/// let a = Assignment::new(4);
/// let sub = Subproblem::new(&inst, &a);
/// let out = MisBound::new().lower_bound(&sub, None);
/// // The two disjoint clauses each cost at least 2.
/// assert_eq!(out.bound, 4);
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct MisBound {
    /// Scratch: (cost per unit, coeff, cost) items of one constraint.
    items: Vec<(f64, i64, i64)>,
    /// Scratch: (position in active list, fractional cover cost).
    scored: Vec<(u32, f64)>,
    /// Scratch: last selection stamp per variable (epoch-cleared).
    used_stamp: Vec<u32>,
    /// Current selection epoch.
    stamp: u32,
}

impl MisBound {
    /// Creates the bound procedure.
    pub fn new() -> MisBound {
        MisBound::default()
    }

    /// Fractional minimum cost of satisfying one residual constraint in
    /// isolation: fill the residual requirement with the cheapest
    /// cost-per-unit literals (the single-constraint LP optimum).
    fn fractional_cover_cost(
        sub: &Subproblem<'_>,
        entry: &ActiveEntry,
        items: &mut Vec<(f64, i64, i64)>,
    ) -> f64 {
        items.clear();
        for t in sub.free_terms(entry.index as usize) {
            let cost = sub.lit_cost(t.lit);
            items.push((cost as f64 / t.coeff as f64, t.coeff, cost));
        }
        items.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut need = entry.residual_rhs;
        let mut total = 0.0;
        for &(_, coeff, cost) in items.iter() {
            if need <= 0 {
                break;
            }
            if coeff >= need {
                total += cost as f64 * need as f64 / coeff as f64;
                need = 0;
            } else {
                total += cost as f64;
                need -= coeff;
            }
        }
        if need > 0 {
            // Residual cannot be satisfied at all: infinite cost. The
            // caller turns this into an infeasibility explanation.
            f64::INFINITY
        } else {
            total
        }
    }
}

impl LowerBound for MisBound {
    fn name(&self) -> &'static str {
        "mis"
    }

    fn lower_bound(&mut self, sub: &Subproblem<'_>, upper: Option<i64>) -> LbOutcome {
        let active = sub.active();
        // Score every active constraint.
        self.scored.clear();
        for (k, e) in active.iter().enumerate() {
            let cost = Self::fractional_cover_cost(sub, e, &mut self.items);
            if cost.is_infinite() {
                // The constraint cannot be satisfied: logically conflicting
                // residual. Explain with its false literals.
                return LbOutcome::infeasible(sub.false_literals_of(e.index as usize));
            }
            if cost > 0.0 {
                self.scored.push((k as u32, cost));
            }
        }
        // Coudert-style greedy: prefer high contribution per touched
        // variable, then larger contribution.
        self.scored.sort_by(|a, b| {
            let wa = a.1 / (1.0 + active[a.0 as usize].free_count as f64);
            let wb = b.1 / (1.0 + active[b.0 as usize].free_count as f64);
            wb.partial_cmp(&wa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
        });
        let num_vars = sub.instance().num_vars();
        if self.used_stamp.len() < num_vars {
            self.used_stamp.resize(num_vars, 0);
        }
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Epoch wrap: clear stale stamps once every 2^32 calls.
            self.used_stamp.iter_mut().for_each(|s| *s = 0);
            self.stamp = 1;
        }
        let stamp = self.stamp;
        let mut total = 0.0;
        let mut explanation: Vec<Lit> = Vec::new();
        for &(k, cost) in &self.scored {
            let e = &active[k as usize];
            let index = e.index as usize;
            if sub.free_terms(index).any(|t| self.used_stamp[t.lit.var().index()] == stamp) {
                continue;
            }
            for t in sub.free_terms(index) {
                self.used_stamp[t.lit.var().index()] = stamp;
            }
            total += cost;
            explanation.extend(sub.false_literals(index));
            if let Some(ub) = upper {
                // Early exit once the bound already prunes.
                if sub.path_cost() + (total - 1e-9).ceil() as i64 >= ub {
                    break;
                }
            }
        }
        let bound = sub.path_cost() + (total - 1e-9).ceil() as i64;
        LbOutcome::bound(bound, explanation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::{brute_force, Assignment, InstanceBuilder, Var};

    #[test]
    fn disjoint_clauses_add_up() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(4);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_clause([v[2].positive(), v[3].positive()]);
        b.minimize([
            (2, v[0].positive()),
            (3, v[1].positive()),
            (5, v[2].positive()),
            (4, v[3].positive()),
        ]);
        let inst = b.build().unwrap();
        let a = Assignment::new(4);
        let out = MisBound::new().lower_bound(&Subproblem::new(&inst, &a), None);
        assert_eq!(out.bound, 2 + 4);
        assert!(!out.infeasible);
    }

    #[test]
    fn overlapping_constraints_counted_once() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_clause([v[1].positive(), v[2].positive()]);
        b.minimize(v.iter().map(|x| (1, x.positive())));
        let inst = b.build().unwrap();
        let a = Assignment::new(3);
        let out = MisBound::new().lower_bound(&Subproblem::new(&inst, &a), None);
        // Constraints share x2: only one can be selected.
        assert_eq!(out.bound, 1);
    }

    #[test]
    fn fractional_cover_of_general_constraint() {
        // 3x1 + 2x2 >= 4 with costs 3, 4: cheapest per unit is x1 (1.0)
        // then x2 (2.0): 3 + 2*(1/2)*... -> 3 + 4*(1/2) = 5? residual 4:
        // x1 covers 3, x2 covers remaining 1 of 2 -> cost 3 + 4*0.5 = 5.
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_linear(vec![(3, v[0].positive()), (2, v[1].positive())], pbo_core::RelOp::Ge, 4);
        b.minimize([(3, v[0].positive()), (4, v[1].positive())]);
        let inst = b.build().unwrap();
        let a = Assignment::new(2);
        let out = MisBound::new().lower_bound(&Subproblem::new(&inst, &a), None);
        assert_eq!(out.bound, 5);
    }

    #[test]
    fn bound_never_exceeds_optimum_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x415);
        for round in 0..50 {
            let n = rng.gen_range(3..9);
            let mut b = InstanceBuilder::new();
            let vars = b.new_vars(n);
            for _ in 0..rng.gen_range(2..7) {
                let k = rng.gen_range(1..=3.min(n));
                let mut idxs: Vec<usize> = (0..n).collect();
                for i in 0..k {
                    let j = rng.gen_range(i..n);
                    idxs.swap(i, j);
                }
                b.add_at_least(1, idxs[..k].iter().map(|&i| vars[i].lit(rng.gen_bool(0.8))));
            }
            b.minimize(vars.iter().map(|v| (rng.gen_range(0..5), v.positive())));
            let inst = b.build().unwrap();
            let Some(opt) = brute_force(&inst).cost() else { continue };
            let a = Assignment::new(n);
            let out = MisBound::new().lower_bound(&Subproblem::new(&inst, &a), None);
            assert!(!out.infeasible, "round {round}");
            assert!(out.bound <= opt, "round {round}: MIS bound {} > optimum {opt}", out.bound);
        }
    }

    #[test]
    fn bound_valid_under_partial_assignment() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(4);
        b.add_at_least(2, v.iter().map(|x| x.positive()));
        b.minimize(v.iter().enumerate().map(|(i, x)| ((i + 1) as i64, x.positive())));
        let inst = b.build().unwrap();
        let mut a = Assignment::new(4);
        a.assign(Var::new(0), false);
        let sub = Subproblem::new(&inst, &a);
        let out = MisBound::new().lower_bound(&sub, None);
        // Best completion: x2 + x3 = 2 + 3 = 5; fractional bound <= 5 and
        // >= cheapest pair fraction (2 per unit * 2 units = 4-ish).
        assert!(out.bound <= 5);
        assert!(out.bound >= 4);
    }

    #[test]
    fn explanation_lists_false_literals_of_selected() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_clause([v[0].positive(), v[1].positive(), v[2].positive()]);
        b.minimize([(1, v[1].positive()), (1, v[2].positive())]);
        let inst = b.build().unwrap();
        let mut a = Assignment::new(3);
        a.assign(Var::new(0), false);
        let sub = Subproblem::new(&inst, &a);
        let out = MisBound::new().lower_bound(&sub, None);
        assert_eq!(out.bound, 1);
        assert_eq!(out.explanation, vec![v[0].positive()]);
    }

    #[test]
    fn infeasible_residual_reported() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_at_least(2, [v[0].positive(), v[1].positive()]);
        b.minimize([(1, v[0].positive())]);
        let inst = b.build().unwrap();
        let mut a = Assignment::new(2);
        a.assign(Var::new(0), false);
        // x1 false makes the cardinality constraint unsatisfiable; a
        // propagating solver would have caught it, but the bound must cope.
        let sub = Subproblem::new(&inst, &a);
        let out = MisBound::new().lower_bound(&sub, None);
        assert!(out.infeasible);
        assert_eq!(out.explanation, vec![v[0].positive()]);
    }

    #[test]
    fn scratch_reuse_is_stateless_across_calls() {
        // The same MisBound instance must return identical outcomes when
        // called repeatedly on different subproblems (buffer reuse must
        // not leak state between calls).
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(4);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_clause([v[2].positive(), v[3].positive()]);
        b.minimize(v.iter().enumerate().map(|(i, x)| ((i + 2) as i64, x.positive())));
        let inst = b.build().unwrap();
        let mut shared = MisBound::new();
        for round in 0..4 {
            let mut a = Assignment::new(4);
            if round % 2 == 1 {
                a.assign(Var::new(0), true);
            }
            let sub = Subproblem::new(&inst, &a);
            let from_shared = shared.lower_bound(&sub, None);
            let from_fresh = MisBound::new().lower_bound(&sub, None);
            assert_eq!(from_shared, from_fresh, "round {round}");
        }
    }
}
