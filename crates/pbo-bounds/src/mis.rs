//! Lower bounding by a greedy maximum independent set of constraints
//! (MIS), the classic bound for covering problems (Coudert; Villa et al.)
//! and the baseline method of the paper (sec. 3), upgraded with
//! **implied-literal reasoning**.
//!
//! Constraints that share no *free* variable are independent: the minimum
//! cost of satisfying each can be added up. The per-constraint minimum is
//! itself lower-bounded by the fractional (single-constraint LP) cover
//! cost, which greedy computes exactly by filling cheapest cost-per-unit
//! literals first.
//!
//! Before partitioning, the bound runs a cheap **unit-implication
//! closure** over the residual rows (static and dynamic alike): a row
//! whose free weight cannot reach its residual right-hand side without a
//! particular literal implies that literal, the implication shrinks the
//! other rows, and the closure iterates to fixpoint. Implied literals
//! contribute their objective cost to the bound, contradictions prove
//! the residual infeasible (a pre-incumbent prune no other cheap bound
//! provides), and — once an upper bound exists — a **reduced-cost fixing**
//! pass implies literals whose cost would push any completion past the
//! incumbent, re-running the closure on what it fixed. Every derivation
//! step records the false literals of the rows it used, so the
//! explanation (`omega_pl`) stays sound.
//!
//! The kernel is **steady-state allocation-free**: at the start of a
//! bound call the free terms of every active row are materialized *once*
//! into a flat per-call CSR scratch (coefficients, literals and objective
//! costs in contiguous reusable arrays), and the closure, greedy and
//! reduced-cost passes all iterate that scratch instead of re-filtering
//! the rows through the assignment four to six times per call. All
//! per-variable marks are epoch-stamped, the hot sorts are unstable with
//! explicit index tie-breaks (stable sorts allocate), and the
//! explanation is built directly into the caller's reusable
//! [`LbOutcome`] buffer via [`LowerBound::lower_bound_into`].

use pbo_core::Lit;

use crate::subproblem::{ActiveEntry, Subproblem};
use crate::{LbOutcome, LowerBound};

/// Maximum closure rounds per pass; implications are rare after engine
/// propagation, so the cap only bounds pathological cascades.
const MAX_CLOSURE_ROUNDS: usize = 8;

/// Greedy MIS lower bound with implied-literal reasoning.
///
/// # Examples
///
/// ```
/// use pbo_core::{Assignment, InstanceBuilder};
/// use pbo_bounds::{LowerBound, MisBound, Subproblem};
///
/// let mut b = InstanceBuilder::new();
/// let v = b.new_vars(4);
/// b.add_clause([v[0].positive(), v[1].positive()]);
/// b.add_clause([v[2].positive(), v[3].positive()]);
/// b.minimize(v.iter().map(|x| (2, x.positive())));
/// let inst = b.build()?;
/// let a = Assignment::new(4);
/// let sub = Subproblem::new(&inst, &a);
/// let out = MisBound::new().lower_bound(&sub, None);
/// // The two disjoint clauses each cost at least 2.
/// assert_eq!(out.bound, 4);
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
#[derive(Clone, Debug)]
pub struct MisBound {
    /// Run the implied-literal closure and reduced-cost fixing.
    implied: bool,
    // --- per-call materialized free-term CSR (reused across calls) ---
    /// Offsets into the `free_*` arrays per active-row position
    /// (length `active + 1`). Each span is stored in **fractional-cover
    /// order** (ascending cost-per-unit, term order breaking ties), so
    /// the cover walk needs no per-pass sorting.
    free_start: Vec<u32>,
    /// Coefficients of the free terms, row-major over the active list.
    free_coeff: Vec<i64>,
    /// Literals of the free terms (parallel to `free_coeff`).
    free_lit: Vec<Lit>,
    /// Objective costs of the free literals (parallel to `free_coeff`).
    free_cost: Vec<i64>,
    /// Free weight of each active row at materialization time (the
    /// no-implications fast path of `recompute_rows`).
    free_sum0: Vec<i64>,
    /// Largest free coefficient of each active row: rows whose max
    /// coefficient fits in the slack can be skipped by the closure
    /// without scanning a single term.
    free_max: Vec<i64>,
    /// Number of locally implied variables this call; 0 enables the
    /// fast paths above.
    num_local: u32,
    // --- scratch ---
    /// Scratch of the [`MisBound::resort_span`] soundness fallback: one
    /// row's (ratio, coeff, lit, cost, position) items. Empty in the
    /// normal path (dynamic rows arrive pre-sorted from the registry).
    row_buf: Vec<(f64, i64, Lit, i64, u32)>,
    /// Scratch: (position in active list, fractional cover cost).
    scored: Vec<(u32, f64, f64)>,
    /// Scratch: last selection stamp per variable (epoch-cleared).
    used_stamp: Vec<u32>,
    /// Scratch: local implied-value stamp per variable.
    val_stamp: Vec<u32>,
    /// Scratch: local implied value, valid when stamped this call.
    val: Vec<bool>,
    /// Scratch: selection stamp per variable for `sel_cost`.
    sel_stamp: Vec<u32>,
    /// Scratch: cover cost of the selected row containing the variable.
    sel_cost: Vec<f64>,
    /// Scratch: per-active-row adjusted residual rhs under local values.
    need: Vec<i64>,
    /// Scratch: per-active-row free weight under local values.
    free_sum: Vec<i64>,
    /// Rows (original indices) whose false literals explain implications.
    expl_rows: Vec<u32>,
    /// Scratch: implied literals of the row under examination.
    implied_here: Vec<Lit>,
    /// Current stamp counter (shared by all stamped scratch arrays).
    stamp: u32,
}

impl Default for MisBound {
    fn default() -> MisBound {
        MisBound {
            implied: true,
            free_start: Vec::new(),
            free_coeff: Vec::new(),
            free_lit: Vec::new(),
            free_cost: Vec::new(),
            free_sum0: Vec::new(),
            free_max: Vec::new(),
            num_local: 0,
            row_buf: Vec::new(),
            scored: Vec::new(),
            used_stamp: Vec::new(),
            val_stamp: Vec::new(),
            val: Vec::new(),
            sel_stamp: Vec::new(),
            sel_cost: Vec::new(),
            need: Vec::new(),
            free_sum: Vec::new(),
            expl_rows: Vec::new(),
            implied_here: Vec::new(),
            stamp: 0,
        }
    }
}

/// Outcome of one closure pass.
enum ClosureStep {
    /// Fixpoint reached; accumulated objective cost of implied literals.
    Done,
    /// A row (by active position) cannot be satisfied under the local
    /// implications.
    Infeasible(usize),
}

impl MisBound {
    /// Creates the bound procedure (implied-literal reasoning enabled).
    pub fn new() -> MisBound {
        MisBound::default()
    }

    /// Creates the bound procedure with implied-literal reasoning
    /// switched on or off (the plain paper MIS), for ablations.
    pub fn with_implied(implied: bool) -> MisBound {
        MisBound { implied, ..MisBound::default() }
    }

    /// Returns `true` if implied-literal reasoning is enabled.
    pub fn implied_enabled(&self) -> bool {
        self.implied
    }

    /// Bumps the shared stamp counter, clearing every stamped array on
    /// wrap-around (once every 2^32 bumps).
    fn next_stamp(&mut self) -> u32 {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.used_stamp.iter_mut().for_each(|s| *s = 0);
            self.val_stamp.iter_mut().for_each(|s| *s = 0);
            self.sel_stamp.iter_mut().for_each(|s| *s = 0);
            self.stamp = 1;
        }
        self.stamp
    }

    /// Local implied value of a variable this call, if any.
    #[inline]
    fn local_value(&self, val_epoch: u32, var: usize) -> Option<bool> {
        if self.val_stamp[var] == val_epoch {
            Some(self.val[var])
        } else {
            None
        }
    }

    /// Materializes the free terms of every active row into the flat
    /// per-call CSR scratch — one filtered pass over the residual,
    /// amortized over every later closure/greedy/fixing iteration. Each
    /// row's span is stored pre-sorted in fractional-cover order
    /// (ascending cost-per-unit, stable in term order), and the row's
    /// free weight and maximum coefficient are captured for the
    /// no-implication fast paths.
    fn materialize(&mut self, sub: &Subproblem<'_>, active: &[ActiveEntry]) {
        self.free_start.clear();
        self.free_coeff.clear();
        self.free_lit.clear();
        self.free_cost.clear();
        self.free_sum0.clear();
        self.free_max.clear();
        self.free_start.push(0);
        let num_static = sub.num_static_rows();
        let arena = sub.instance().arena();
        let region = sub.dynamic_rows();
        let assignment = sub.assignment();
        for e in active {
            let index = e.index as usize;
            let mut sum = 0i64;
            let mut max = 0i64;
            if index < num_static {
                // Static rows: walk the instance's precomputed cover
                // order (a filtered subsequence of a sorted sequence is
                // sorted), gathering the free terms — no ratio
                // arithmetic, no sorting. The order is a build-time
                // invariant of the immutable instance.
                for &p in arena.cover_order(index) {
                    let t = arena.term_at(p as usize);
                    if assignment.lit_value(t.lit) != pbo_core::Value::Unassigned {
                        continue;
                    }
                    self.free_coeff.push(t.coeff);
                    self.free_lit.push(t.lit);
                    self.free_cost.push(sub.lit_cost(t.lit));
                    sum += t.coeff;
                    max = max.max(t.coeff);
                }
            } else {
                // Dynamic rows: the region's cover order is precomputed
                // at push-row time *when the registry was built with the
                // instance's objective costs* (`DynamicRows::for_instance`,
                // what the solver pipeline does). The streaming walk
                // verifies sortedness against the view's own costs for
                // free; a registry built costless falls back to the
                // per-call sort — an out-of-order cover walk would
                // overestimate the single-row LP minimum, which is
                // unsound, so this must hold in release builds too.
                let lo = self.free_coeff.len();
                let mut prev = f64::NEG_INFINITY;
                let mut sorted = true;
                for &p in region.cover_order(index - num_static) {
                    let t = region.term_at(p as usize);
                    if assignment.lit_value(t.lit) != pbo_core::Value::Unassigned {
                        continue;
                    }
                    let cost = sub.lit_cost(t.lit);
                    let ratio = cost as f64 / t.coeff as f64;
                    sorted &= ratio >= prev;
                    prev = ratio;
                    self.free_coeff.push(t.coeff);
                    self.free_lit.push(t.lit);
                    self.free_cost.push(cost);
                    sum += t.coeff;
                    max = max.max(t.coeff);
                }
                if !sorted {
                    self.resort_span(lo);
                }
            }
            self.free_start.push(self.free_coeff.len() as u32);
            self.free_sum0.push(sum);
            self.free_max.push(max);
        }
    }

    /// Fallback for a dynamic row whose precomputed cover order does not
    /// match this view's literal costs (a registry built without
    /// [`DynamicRows::for_instance`](crate::DynamicRows::for_instance)):
    /// re-sorts the just-materialized span `lo..` by ascending
    /// cost-per-unit, ties in walk order — the old per-call sort, kept
    /// as the soundness backstop.
    fn resort_span(&mut self, lo: usize) {
        let mut row_buf = std::mem::take(&mut self.row_buf);
        row_buf.clear();
        for i in lo..self.free_coeff.len() {
            let ratio = self.free_cost[i] as f64 / self.free_coeff[i] as f64;
            row_buf.push((
                ratio,
                self.free_coeff[i],
                self.free_lit[i],
                self.free_cost[i],
                i as u32,
            ));
        }
        row_buf.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then(a.4.cmp(&b.4))
        });
        for (i, &(_, coeff, lit, cost, _)) in row_buf.iter().enumerate() {
            self.free_coeff[lo + i] = coeff;
            self.free_lit[lo + i] = lit;
            self.free_cost[lo + i] = cost;
        }
        self.row_buf = row_buf;
    }

    /// Span of active-row position `k` in the `free_*` arrays.
    #[inline]
    fn span(&self, k: usize) -> std::ops::Range<usize> {
        self.free_start[k] as usize..self.free_start[k + 1] as usize
    }

    /// Recomputes `need` / `free_sum` of every active row under the
    /// current local implications. O(active) with no implications (the
    /// common case — copied from the materialization sums), O(free
    /// terms) otherwise.
    fn recompute_rows(&mut self, active: &[ActiveEntry], val_epoch: u32) {
        self.need.clear();
        self.free_sum.clear();
        if self.num_local == 0 {
            self.need.extend(active.iter().map(|e| e.residual_rhs));
            self.free_sum.extend_from_slice(&self.free_sum0);
            return;
        }
        for (k, e) in active.iter().enumerate() {
            let mut need = e.residual_rhs;
            let mut free = 0i64;
            for i in self.span(k) {
                match self.local_value(val_epoch, self.free_lit[i].var().index()) {
                    Some(v) if v == self.free_lit[i].is_positive() => need -= self.free_coeff[i],
                    Some(_) => {} // locally falsified: contributes nothing
                    None => free += self.free_coeff[i],
                }
            }
            self.need.push(need);
            self.free_sum.push(free);
        }
    }

    /// Records a locally implied literal. Returns `false` on
    /// contradiction (the opposite value was already implied).
    fn imply(
        &mut self,
        sub: &Subproblem<'_>,
        lit: Lit,
        source_row: u32,
        val_epoch: u32,
        implied_cost: &mut i64,
    ) -> bool {
        let v = lit.var().index();
        match self.local_value(val_epoch, v) {
            Some(cur) if cur == lit.is_positive() => true,
            Some(_) => {
                self.expl_rows.push(source_row);
                false
            }
            None => {
                self.val_stamp[v] = val_epoch;
                self.val[v] = lit.is_positive();
                self.num_local += 1;
                *implied_cost += sub.lit_cost(lit);
                self.expl_rows.push(source_row);
                true
            }
        }
    }

    /// Unit-implication closure over the active rows: repeatedly implies
    /// literals a row cannot do without and re-evaluates every row under
    /// the grown implication set, until fixpoint (or the round cap).
    fn closure(
        &mut self,
        sub: &Subproblem<'_>,
        active: &[ActiveEntry],
        val_epoch: u32,
        implied_cost: &mut i64,
    ) -> ClosureStep {
        for _ in 0..MAX_CLOSURE_ROUNDS {
            self.recompute_rows(active, val_epoch);
            let mut changed = false;
            for (k, e) in active.iter().enumerate() {
                if self.need[k] <= 0 {
                    continue;
                }
                if self.free_sum[k] < self.need[k] {
                    return ClosureStep::Infeasible(k);
                }
                let slack = self.free_sum[k] - self.need[k];
                // No term of the row can exceed the slack and no local
                // value touches it: nothing to imply, skip the scan.
                // (With implications around, `free_max` may count a
                // locally-valued term, so the shortcut only applies to
                // the implication-free state.)
                if self.num_local == 0 && self.free_max[k] <= slack {
                    continue;
                }
                // Free literals the row cannot be satisfied without.
                // (Free weight is recomputed per round, so implications
                // made earlier this round only under-trigger — sound.)
                let mut implied_here = std::mem::take(&mut self.implied_here);
                implied_here.clear();
                for i in self.span(k) {
                    if self.local_value(val_epoch, self.free_lit[i].var().index()).is_some() {
                        continue;
                    }
                    if self.free_coeff[i] > slack {
                        implied_here.push(self.free_lit[i]);
                    }
                }
                for i in 0..implied_here.len() {
                    changed = true;
                    if !self.imply(sub, implied_here[i], e.index, val_epoch, implied_cost) {
                        self.implied_here = implied_here;
                        return ClosureStep::Infeasible(k);
                    }
                }
                self.implied_here = implied_here;
            }
            if !changed {
                break;
            }
        }
        ClosureStep::Done
    }

    /// Fractional minimum cost of satisfying one residual row in
    /// isolation under the local implications: fill the adjusted residual
    /// requirement with the cheapest cost-per-unit free literals (the
    /// single-constraint LP optimum). The row's span is already stored
    /// in cover order, so this is a plain walk — no per-pass sorting.
    /// Infinite when the requirement is unreachable.
    fn fractional_cover_cost(&mut self, k: usize, need: i64, val_epoch: u32) -> f64 {
        let mut left = need;
        let mut total = 0.0;
        let filter = self.num_local > 0;
        for i in self.span(k) {
            if left <= 0 {
                break;
            }
            if filter && self.local_value(val_epoch, self.free_lit[i].var().index()).is_some() {
                continue;
            }
            let coeff = self.free_coeff[i];
            let cost = self.free_cost[i];
            if coeff >= left {
                total += cost as f64 * left as f64 / coeff as f64;
                left = 0;
            } else {
                total += cost as f64;
                left -= coeff;
            }
        }
        if left > 0 {
            f64::INFINITY
        } else {
            total
        }
    }

    /// One greedy scoring + selection pass over the active rows. Returns
    /// `Err(k)` when row `k` cannot be covered at all, else the pass
    /// total; selected rows extend `explanation` with their false
    /// literals and stamp `sel_cost` for the fixing pass.
    #[allow(clippy::too_many_arguments)]
    fn greedy_pass(
        &mut self,
        sub: &Subproblem<'_>,
        active: &[ActiveEntry],
        val_epoch: u32,
        implied_cost: i64,
        upper: Option<i64>,
        explanation: &mut Vec<Lit>,
    ) -> Result<f64, usize> {
        self.recompute_rows(active, val_epoch);
        self.scored.clear();
        #[allow(clippy::needless_range_loop)] // k also indexes the free-term spans
        for k in 0..active.len() {
            let need = self.need[k];
            if need <= 0 {
                continue; // satisfied by local implications
            }
            let cost = self.fractional_cover_cost(k, need, val_epoch);
            if cost.is_infinite() {
                return Err(k);
            }
            if cost > 0.0 {
                // The Coudert weight (contribution per touched variable)
                // is precomputed so the sort comparator is division-free.
                let weighted = cost / (1.0 + active[k].free_count as f64);
                self.scored.push((k as u32, cost, weighted));
            }
        }
        // Coudert-style greedy: prefer high contribution per touched
        // variable, then larger contribution, then active position —
        // the explicit position tie-break reproduces the stable order
        // with an allocation-free unstable sort.
        self.scored.sort_unstable_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| a.0.cmp(&b.0))
        });
        let sel_epoch = self.next_stamp();
        let scored = std::mem::take(&mut self.scored);
        let filter = self.num_local > 0;
        let mut total = 0.0;
        for &(k, cost, _) in &scored {
            let e = &active[k as usize];
            let index = e.index as usize;
            // A row whose free (non-locally-implied) variables intersect
            // an already selected row is dependent: skip it.
            let mut clashes = false;
            for i in self.span(k as usize) {
                let v = self.free_lit[i].var().index();
                if (!filter || self.local_value(val_epoch, v).is_none())
                    && self.used_stamp[v] == sel_epoch
                {
                    clashes = true;
                    break;
                }
            }
            if clashes {
                continue;
            }
            for i in self.span(k as usize) {
                let v = self.free_lit[i].var().index();
                if !filter || self.local_value(val_epoch, v).is_none() {
                    self.used_stamp[v] = sel_epoch;
                    self.sel_stamp[v] = sel_epoch;
                    self.sel_cost[v] = cost;
                }
            }
            total += cost;
            explanation.extend(sub.false_literals(index));
            if let Some(ub) = upper {
                // Early exit once the bound already prunes.
                if sub.path_cost() + implied_cost + ceil_eps(total) >= ub {
                    break;
                }
            }
        }
        self.scored = scored;
        Ok(total)
    }

    /// Assembles the explanation in place: selected-row false literals
    /// already in `explanation`, plus the false literals of every closure
    /// source row, deduplicated.
    fn finish_explanation(&mut self, sub: &Subproblem<'_>, explanation: &mut Vec<Lit>) {
        for &row in &self.expl_rows {
            explanation.extend(sub.false_literals(row as usize));
        }
        explanation.sort_unstable();
        explanation.dedup();
    }

    /// Writes an infeasibility verdict for `row` into `out`. Dynamic rows
    /// are implied by the incumbent bound, not the instance alone: any
    /// infeasibility that might rest on one is upper-conditional — a
    /// *bound* fact (no completion cheaper than `upper`), not true
    /// infeasibility.
    fn infeasible_into(
        &mut self,
        sub: &Subproblem<'_>,
        row: u32,
        conditional: bool,
        upper: Option<i64>,
        out: &mut LbOutcome,
    ) {
        self.expl_rows.push(row);
        self.finish_explanation(sub, &mut out.explanation);
        match (conditional, upper) {
            (true, Some(u)) => {
                out.bound = u;
                out.infeasible = false;
            }
            // Conditional wipeout but no incumbent passed: only
            // completions cheaper than an incumbent this caller does
            // not know were refuted, so nothing may be claimed —
            // fall back to the trivial (non-pruning) bound.
            (true, None) => {
                out.bound = sub.path_cost();
                out.infeasible = false;
            }
            (false, _) => {
                out.bound = i64::MAX;
                out.infeasible = true;
            }
        }
    }
}

/// Integer ceiling with the epsilon guard used throughout the bounds.
#[inline]
fn ceil_eps(x: f64) -> i64 {
    (x - 1e-9).ceil() as i64
}

impl LowerBound for MisBound {
    fn name(&self) -> &'static str {
        "mis"
    }

    fn lower_bound_into(&mut self, sub: &Subproblem<'_>, upper: Option<i64>, out: &mut LbOutcome) {
        out.explanation.clear();
        let active = sub.active();
        let num_vars = sub.instance().num_vars();
        if self.used_stamp.len() < num_vars {
            self.used_stamp.resize(num_vars, 0);
            self.val_stamp.resize(num_vars, 0);
            self.val.resize(num_vars, false);
            self.sel_stamp.resize(num_vars, 0);
            self.sel_cost.resize(num_vars, 0.0);
        }
        self.expl_rows.clear();
        self.num_local = 0;
        self.materialize(sub, active);
        // A call consumes at most 3 stamps (implied values + two greedy
        // passes); a mid-call wrap would clear the implied-value state
        // between phases, so force the wrap here if one is near.
        if self.stamp >= u32::MAX - 3 {
            self.stamp = u32::MAX;
            let _ = self.next_stamp();
        }
        let val_epoch = self.next_stamp();
        let mut implied_cost = 0i64;
        // See `infeasible_into` for why dynamic rows make infeasibility
        // verdicts conditional. The same holds for anything derived
        // after reduced-cost fixing.
        let has_dynamic = !sub.dynamic_rows().is_empty();

        // --- Pass 0: implication closure over the raw residual. ---
        if self.implied {
            match self.closure(sub, active, val_epoch, &mut implied_cost) {
                ClosureStep::Done => {}
                ClosureStep::Infeasible(k) => {
                    return self.infeasible_into(sub, active[k].index, has_dynamic, upper, out);
                }
            }
        } else {
            // Plain MIS still needs the per-row requirements.
            self.recompute_rows(active, val_epoch);
        }

        // --- Pass 1: greedy independent-set partition. ---
        let mut total = match self.greedy_pass(
            sub,
            active,
            val_epoch,
            implied_cost,
            upper,
            &mut out.explanation,
        ) {
            Ok(t) => t,
            Err(k) => {
                // Closure implications are entailed by the rows
                // themselves, so the verdict is conditional exactly
                // when a dynamic row might be among them.
                return self.infeasible_into(sub, active[k].index, has_dynamic, upper, out);
            }
        };
        let mut bound = sub.path_cost() + implied_cost + ceil_eps(total);

        // --- Pass 2 (optional): reduced-cost fixing against `upper`. ---
        // A free costed literal whose cost plus the bound portions
        // independent of its variable reaches `upper` cannot be true in
        // any improving completion; fixing it shrinks rows, which can
        // cascade into implications or a (bound-conditional) wipeout.
        if self.implied {
            if let (Some(u), Some(obj)) = (upper, sub.instance().objective()) {
                if bound < u {
                    let path = sub.path_cost();
                    let mut fixed_any = false;
                    for &(c, l) in obj.terms() {
                        if c <= 0
                            || sub.assignment().lit_value(l) != pbo_core::Value::Unassigned
                            || self.local_value(val_epoch, l.var().index()).is_some()
                        {
                            continue;
                        }
                        let v = l.var().index();
                        let sel =
                            if self.sel_stamp[v] == self.stamp { self.sel_cost[v] } else { 0.0 };
                        let independent = total - sel;
                        if path + implied_cost + ceil_eps(independent) + c >= u {
                            self.val_stamp[v] = val_epoch;
                            self.val[v] = !l.is_positive();
                            self.num_local += 1;
                            fixed_any = true;
                        }
                    }
                    if fixed_any {
                        match self.closure(sub, active, val_epoch, &mut implied_cost) {
                            ClosureStep::Done => {}
                            ClosureStep::Infeasible(k) => {
                                return self.infeasible_into(
                                    sub,
                                    active[k].index,
                                    true,
                                    upper,
                                    out,
                                );
                            }
                        }
                        match self.greedy_pass(
                            sub,
                            active,
                            val_epoch,
                            implied_cost,
                            upper,
                            &mut out.explanation,
                        ) {
                            Ok(t) => total = t,
                            Err(k) => {
                                return self.infeasible_into(
                                    sub,
                                    active[k].index,
                                    true,
                                    upper,
                                    out,
                                );
                            }
                        }
                        // Both passes produced valid bounds; keep the max.
                        bound = bound.max(sub.path_cost() + implied_cost + ceil_eps(total));
                    }
                }
            }
        }
        self.finish_explanation(sub, &mut out.explanation);
        out.bound = bound;
        out.infeasible = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::{brute_force, Assignment, InstanceBuilder, Var};

    #[test]
    fn disjoint_clauses_add_up() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(4);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_clause([v[2].positive(), v[3].positive()]);
        b.minimize([
            (2, v[0].positive()),
            (3, v[1].positive()),
            (5, v[2].positive()),
            (4, v[3].positive()),
        ]);
        let inst = b.build().unwrap();
        let a = Assignment::new(4);
        let out = MisBound::new().lower_bound(&Subproblem::new(&inst, &a), None);
        assert_eq!(out.bound, 2 + 4);
        assert!(!out.infeasible);
    }

    #[test]
    fn overlapping_constraints_counted_once() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_clause([v[1].positive(), v[2].positive()]);
        b.minimize(v.iter().map(|x| (1, x.positive())));
        let inst = b.build().unwrap();
        let a = Assignment::new(3);
        let out = MisBound::new().lower_bound(&Subproblem::new(&inst, &a), None);
        // Constraints share x2: only one can be selected.
        assert_eq!(out.bound, 1);
    }

    #[test]
    fn fractional_cover_of_general_constraint() {
        // 3x1 + 2x2 >= 4 with costs 3, 4. Plain fractional cover: x1
        // covers 3, x2 covers the remaining 1 of 2 -> 3 + 4*0.5 = 5. The
        // closure sees both literals are forced (5 - 3 < 4, 5 - 2 < 4)
        // and reaches the true optimum 7.
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_linear(vec![(3, v[0].positive()), (2, v[1].positive())], pbo_core::RelOp::Ge, 4);
        b.minimize([(3, v[0].positive()), (4, v[1].positive())]);
        let inst = b.build().unwrap();
        let a = Assignment::new(2);
        let plain = MisBound::with_implied(false).lower_bound(&Subproblem::new(&inst, &a), None);
        assert_eq!(plain.bound, 5);
        let implied = MisBound::new().lower_bound(&Subproblem::new(&inst, &a), None);
        assert_eq!(implied.bound, 7);
        assert_eq!(brute_force(&inst).cost(), Some(7));
    }

    #[test]
    fn implied_literals_raise_the_bound() {
        // 3x1 + x2 >= 3 forces x1 (cost 4): plain fractional cover gives
        // 3/4 of x1's cost-per-unit mix; the closure pockets the full 4.
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_linear(vec![(3, v[0].positive()), (1, v[1].positive())], pbo_core::RelOp::Ge, 3);
        b.minimize([(4, v[0].positive()), (0, v[1].positive())]);
        let inst = b.build().unwrap();
        let a = Assignment::new(2);
        let plain = MisBound::with_implied(false).lower_bound(&Subproblem::new(&inst, &a), None);
        let implied = MisBound::new().lower_bound(&Subproblem::new(&inst, &a), None);
        assert_eq!(implied.bound, 4, "x1 is implied, its cost is certain");
        assert!(plain.bound <= implied.bound);
        assert_eq!(brute_force(&inst).cost(), Some(4));
    }

    #[test]
    fn closure_detects_cross_row_contradiction() {
        // Row 1 forces x1 (3x1 + x2 >= 3), row 2 forces ~x1
        // (3~x1 + x3 >= 3): the residual is infeasible before any
        // single-row check sees it.
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_linear(vec![(3, v[0].positive()), (1, v[1].positive())], pbo_core::RelOp::Ge, 3);
        b.add_linear(vec![(3, v[0].negative()), (1, v[2].positive())], pbo_core::RelOp::Ge, 3);
        b.minimize([(1, v[1].positive())]);
        let inst = b.build().unwrap();
        let a = Assignment::new(3);
        let out = MisBound::new().lower_bound(&Subproblem::new(&inst, &a), None);
        assert!(out.infeasible, "closure must find the x1 contradiction");
        assert_eq!(brute_force(&inst).cost(), None, "instance really is infeasible");
        // Plain MIS misses it (both rows are individually coverable).
        let plain = MisBound::with_implied(false).lower_bound(&Subproblem::new(&inst, &a), None);
        assert!(!plain.infeasible);
    }

    #[test]
    fn reduced_cost_fixing_prunes_via_upper() {
        // Clauses {x1, x2} and {x2, x3}, costs 5/9/5, upper = 9. Greedy
        // selects one clause (they overlap on x2): bound 5, no prune.
        // Fixing: x2 true already costs 9 >= upper, so x2 is fixed
        // false; the closure then forces both x1 and x3 (5 + 5 = 10 >=
        // 9) — the node prunes where plain MIS cannot.
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_clause([v[1].positive(), v[2].positive()]);
        b.minimize([(5, v[0].positive()), (9, v[1].positive()), (5, v[2].positive())]);
        let inst = b.build().unwrap();
        let a = Assignment::new(3);
        let sub = Subproblem::new(&inst, &a);
        let plain = MisBound::with_implied(false).lower_bound(&sub, Some(9));
        assert!(!plain.prunes(9), "plain MIS must not see it: bound {}", plain.bound);
        let fixed = MisBound::new().lower_bound(&sub, Some(9));
        assert!(fixed.prunes(9), "fixing must prune: bound {}", fixed.bound);
        assert!(!fixed.infeasible, "upper-conditional wipeout must stay a bound fact");
        // Soundness: the optimum really is >= 9 (x2 alone costs 9).
        assert_eq!(brute_force(&inst).cost(), Some(9));
    }

    #[test]
    fn bound_never_exceeds_optimum_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x415);
        for round in 0..50 {
            let n = rng.gen_range(3..9);
            let mut b = InstanceBuilder::new();
            let vars = b.new_vars(n);
            for _ in 0..rng.gen_range(2..7) {
                let k = rng.gen_range(1..=3.min(n));
                let mut idxs: Vec<usize> = (0..n).collect();
                for i in 0..k {
                    let j = rng.gen_range(i..n);
                    idxs.swap(i, j);
                }
                b.add_at_least(1, idxs[..k].iter().map(|&i| vars[i].lit(rng.gen_bool(0.8))));
            }
            b.minimize(vars.iter().map(|v| (rng.gen_range(0..5), v.positive())));
            let inst = b.build().unwrap();
            let Some(opt) = brute_force(&inst).cost() else { continue };
            let a = Assignment::new(n);
            let out = MisBound::new().lower_bound(&Subproblem::new(&inst, &a), None);
            assert!(!out.infeasible, "round {round}");
            assert!(out.bound <= opt, "round {round}: MIS bound {} > optimum {opt}", out.bound);
        }
    }

    #[test]
    fn bound_valid_under_partial_assignment() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(4);
        b.add_at_least(2, v.iter().map(|x| x.positive()));
        b.minimize(v.iter().enumerate().map(|(i, x)| ((i + 1) as i64, x.positive())));
        let inst = b.build().unwrap();
        let mut a = Assignment::new(4);
        a.assign(Var::new(0), false);
        let sub = Subproblem::new(&inst, &a);
        let out = MisBound::new().lower_bound(&sub, None);
        // Best completion: x2 + x3 = 2 + 3 = 5; fractional bound <= 5 and
        // >= cheapest pair fraction (2 per unit * 2 units = 4-ish).
        assert!(out.bound <= 5);
        assert!(out.bound >= 4);
    }

    #[test]
    fn explanation_lists_false_literals_of_selected() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_clause([v[0].positive(), v[1].positive(), v[2].positive()]);
        b.minimize([(1, v[1].positive()), (1, v[2].positive())]);
        let inst = b.build().unwrap();
        let mut a = Assignment::new(3);
        a.assign(Var::new(0), false);
        let sub = Subproblem::new(&inst, &a);
        let out = MisBound::new().lower_bound(&sub, None);
        assert_eq!(out.bound, 1);
        assert_eq!(out.explanation, vec![v[0].positive()]);
    }

    #[test]
    fn infeasible_residual_reported() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_at_least(2, [v[0].positive(), v[1].positive()]);
        b.minimize([(1, v[0].positive())]);
        let inst = b.build().unwrap();
        let mut a = Assignment::new(2);
        a.assign(Var::new(0), false);
        // x1 false makes the cardinality constraint unsatisfiable; a
        // propagating solver would have caught it, but the bound must cope.
        let sub = Subproblem::new(&inst, &a);
        let out = MisBound::new().lower_bound(&sub, None);
        assert!(out.infeasible);
        assert_eq!(out.explanation, vec![v[0].positive()]);
    }

    #[test]
    fn costless_dynamic_registry_falls_back_to_the_per_call_sort() {
        // A registry built with `DynamicRows::new()` carries a costless
        // (term-order) cover order. On an instance with a real objective
        // the MIS walk must detect the mismatch and re-sort — an
        // out-of-order cover walk would overestimate the single-row LP
        // minimum (unsound) — yielding the same outcome as a registry
        // built properly with `for_instance`.
        use crate::{DynRowOrigin, DynamicRows};
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_clause([v[0].positive(), v[1].positive()]);
        // Costs chosen so cost order != term order inside the cut row.
        b.minimize([(9, v[0].positive()), (1, v[1].positive()), (5, v[2].positive())]);
        let inst = b.build().unwrap();
        let cut = pbo_core::PbConstraint::try_new(
            vec![(2, v[0].positive()), (3, v[1].positive()), (1, v[2].positive())],
            3,
        )
        .unwrap();
        let mut costless = DynamicRows::new();
        costless.begin_epoch();
        costless.push(cut.clone(), DynRowOrigin::ObjectiveCut);
        let mut proper = DynamicRows::for_instance(&inst);
        proper.begin_epoch();
        proper.push(cut, DynRowOrigin::PromotedClause);
        assert_ne!(
            costless.arena().cover_order(0),
            proper.arena().cover_order(0),
            "the probe needs a genuine order mismatch"
        );
        let a = Assignment::new(3);
        let from_costless =
            MisBound::new().lower_bound(&Subproblem::with_rows(&inst, &a, &costless), Some(50));
        let from_proper =
            MisBound::new().lower_bound(&Subproblem::with_rows(&inst, &a, &proper), Some(50));
        assert_eq!(from_costless.bound, from_proper.bound, "fallback must restore the sort");
        assert_eq!(from_costless.infeasible, from_proper.infeasible);
    }

    #[test]
    fn scratch_reuse_is_stateless_across_calls() {
        // The same MisBound instance must return identical outcomes when
        // called repeatedly on different subproblems (buffer reuse must
        // not leak state between calls).
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(4);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_clause([v[2].positive(), v[3].positive()]);
        b.minimize(v.iter().enumerate().map(|(i, x)| ((i + 2) as i64, x.positive())));
        let inst = b.build().unwrap();
        let mut shared = MisBound::new();
        for round in 0..4 {
            let mut a = Assignment::new(4);
            if round % 2 == 1 {
                a.assign(Var::new(0), true);
            }
            let sub = Subproblem::new(&inst, &a);
            let from_shared = shared.lower_bound(&sub, None);
            let from_fresh = MisBound::new().lower_bound(&sub, None);
            assert_eq!(from_shared, from_fresh, "round {round}");
        }
    }

    #[test]
    fn into_variant_reuses_the_outcome_buffer() {
        // lower_bound_into must produce the same result as lower_bound
        // while writing into a caller-owned (reused) LbOutcome.
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(4);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_clause([v[2].positive(), v[3].positive()]);
        b.minimize(v.iter().enumerate().map(|(i, x)| ((i + 1) as i64, x.positive())));
        let inst = b.build().unwrap();
        let mut mis = MisBound::new();
        let mut out = LbOutcome::bound(0, Vec::new());
        for round in 0..3 {
            let mut a = Assignment::new(4);
            if round == 1 {
                a.assign(Var::new(2), false);
            }
            let sub = Subproblem::new(&inst, &a);
            mis.lower_bound_into(&sub, Some(100), &mut out);
            let fresh = MisBound::new().lower_bound(&sub, Some(100));
            assert_eq!(out, fresh, "round {round}");
        }
    }

    #[test]
    fn fixing_never_cuts_off_improving_solutions_randomized() {
        // The semantic the solver relies on: whenever a feasible
        // completion strictly cheaper than `upper` exists, the outcome
        // must neither claim infeasibility nor report a bound above that
        // completion's cost.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x5150);
        for round in 0..60 {
            let n = rng.gen_range(3..8);
            let mut b = InstanceBuilder::new();
            let vars = b.new_vars(n);
            for _ in 0..rng.gen_range(2..6) {
                let k = rng.gen_range(1..=3.min(n));
                let mut idxs: Vec<usize> = (0..n).collect();
                for i in 0..k {
                    let j = rng.gen_range(i..n);
                    idxs.swap(i, j);
                }
                let terms: Vec<(i64, Lit)> = idxs[..k]
                    .iter()
                    .map(|&i| (rng.gen_range(1..4), vars[i].lit(rng.gen_bool(0.75))))
                    .collect();
                let maxw: i64 = terms.iter().map(|t| t.0).sum();
                b.add_linear(terms, pbo_core::RelOp::Ge, rng.gen_range(1..=maxw));
            }
            b.minimize(vars.iter().map(|v| (rng.gen_range(0..7), v.positive())));
            let inst = b.build().unwrap();
            let Some(opt) = brute_force(&inst).cost() else { continue };
            let upper = opt + rng.gen_range(1i64..5);
            let a = Assignment::new(n);
            let out = MisBound::new().lower_bound(&Subproblem::new(&inst, &a), Some(upper));
            // opt < upper, so an improving completion exists: pruning it
            // away would be unsound.
            assert!(!out.infeasible, "round {round}: spurious infeasibility");
            assert!(
                out.bound <= opt,
                "round {round}: bound {} exceeds optimum {opt} (upper {upper})",
                out.bound
            );
        }
    }
}
