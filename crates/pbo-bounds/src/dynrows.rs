//! Dynamic rows: derived constraints folded into the residual problem.
//!
//! The static rows of the residual problem come from the instance; this
//! module adds an **epoch-versioned registry of derived rows** — the
//! eq. 10 objective ("knapsack") cut, the eqs. 11–13 cardinality cost
//! cuts and selected learned clauses promoted to PB form — that the
//! bounding procedures see exactly like static rows through the
//! [`Subproblem`](crate::Subproblem) view.
//!
//! Every dynamic row must be *implied by the instance constraints
//! together with the incumbent bound* `cost <= upper - 1`: a bound
//! computed over static + dynamic rows is then a valid lower bound on
//! every completion **cheaper than the incumbent**, which is precisely
//! the set pruning reasons about (eq. 7). The registry is rebuilt on
//! each improving incumbent (`begin_epoch` + `push`); consumers compare
//! [`DynamicRows::epoch`] against the epoch they last installed and swap
//! their row region instead of rebuilding any per-node state.
//!
//! Alongside the [`DynRow`] list (kept for deduplication, diagnostics
//! and cut-pool publishing), the registry maintains a flat SoA
//! [`RowsArena`] mirror — the same contiguous-coefficients /
//! contiguous-literals layout as the instance's
//! [`TermArena`](pbo_core::TermArena) — which the residual state and the
//! subproblem views borrow on the hot path.

use pbo_core::{Instance, Lit, PbConstraint, RowView};

/// Why a dynamic row exists (kept for diagnostics and bench ablations,
/// and consumed by the per-method row filter in the solver's bound
/// pipeline).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DynRowOrigin {
    /// The eq. 10 objective cut `sum c_j l_j <= upper - 1` (normalized).
    ObjectiveCut,
    /// An eqs. 11–13 cardinality cost cut.
    CardinalityCut,
    /// A learned clause promoted to a PB row (`sum l_i >= 1`).
    PromotedClause,
}

/// One derived row of the residual problem.
#[derive(Clone, Debug)]
pub struct DynRow {
    /// The row itself, in normalized `>=` form.
    pub constraint: PbConstraint,
    /// Provenance of the row.
    pub origin: DynRowOrigin,
}

/// Flat SoA storage of a dynamic-row region: contiguous coefficient and
/// literal arrays with per-row spans, right-hand sides and origins.
///
/// This is the layout the per-node hot paths read; it is cheap to clone
/// (a handful of flat `memcpy`s), which is how the residual state takes
/// its epoch-consistent copy of the registry at swap time.
#[derive(Clone, Debug, Default)]
pub struct RowsArena {
    coeffs: Vec<i64>,
    lits: Vec<Lit>,
    /// Per-row offsets into `coeffs`/`lits`; empty means "no rows yet"
    /// (treated like `[0]`).
    row_start: Vec<u32>,
    rhs: Vec<i64>,
    origin: Vec<DynRowOrigin>,
    /// Absolute term positions of each row permuted into
    /// *fractional-cover order* (ascending objective cost per coefficient
    /// unit, ties in term order) — the same precomputed-order contract as
    /// [`TermArena::cover_order`](pbo_core::TermArena::cover_order), but
    /// computed at [`RowsArena::push_row`] time, so region swaps (and the
    /// residual state's flat clone of the region) carry the order along
    /// and no bound call ever sorts a dynamic row again.
    cover_order: Vec<u32>,
}

impl RowsArena {
    /// Creates an empty region.
    pub const fn new() -> RowsArena {
        RowsArena {
            coeffs: Vec::new(),
            lits: Vec::new(),
            row_start: Vec::new(),
            rhs: Vec::new(),
            origin: Vec::new(),
            cover_order: Vec::new(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rhs.len()
    }

    /// Returns `true` if the region holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rhs.is_empty()
    }

    /// The terms of row `k` as parallel coefficient/literal slices.
    #[inline]
    pub fn row(&self, k: usize) -> RowView<'_> {
        let lo = self.row_start[k] as usize;
        let hi = self.row_start[k + 1] as usize;
        RowView { coeffs: &self.coeffs[lo..hi], lits: &self.lits[lo..hi] }
    }

    /// Right-hand side of row `k`.
    #[inline]
    pub fn rhs(&self, k: usize) -> i64 {
        self.rhs[k]
    }

    /// Provenance of row `k`.
    #[inline]
    pub fn origin(&self, k: usize) -> DynRowOrigin {
        self.origin[k]
    }

    /// The absolute term positions of row `k` in fractional-cover order;
    /// index them into [`RowsArena::term_at`].
    #[inline]
    pub fn cover_order(&self, k: usize) -> &[u32] {
        let lo = self.row_start[k] as usize;
        let hi = self.row_start[k + 1] as usize;
        &self.cover_order[lo..hi]
    }

    /// The term at absolute position `p` (as listed by
    /// [`RowsArena::cover_order`]).
    #[inline]
    pub fn term_at(&self, p: usize) -> pbo_core::PbTerm {
        pbo_core::PbTerm { coeff: self.coeffs[p], lit: self.lits[p] }
    }

    /// Drops every row (capacity retained).
    pub fn clear(&mut self) {
        self.coeffs.clear();
        self.lits.clear();
        self.row_start.clear();
        self.rhs.clear();
        self.origin.clear();
        self.cover_order.clear();
    }

    /// Appends a row and precomputes its fractional-cover order under
    /// `lit_cost` (a dense objective-cost table indexed by literal code;
    /// an empty table means a costless objective). The comparator —
    /// ascending `cost / coeff`, ties in term order — is exactly the sort
    /// the MIS cover walk used to perform per bound call, so outcomes are
    /// bit-identical to the per-call path.
    pub fn push_row(&mut self, constraint: &PbConstraint, origin: DynRowOrigin, lit_cost: &[i64]) {
        if self.row_start.is_empty() {
            self.row_start.push(0);
        }
        let lo = self.coeffs.len();
        for t in constraint.terms() {
            self.coeffs.push(t.coeff);
            self.lits.push(t.lit);
            self.cover_order.push(self.cover_order.len() as u32);
        }
        let (lits, coeffs) = (&self.lits, &self.coeffs);
        let cost = |p: u32| {
            lit_cost.get(lits[p as usize].code()).copied().unwrap_or(0) as f64
                / coeffs[p as usize] as f64
        };
        self.cover_order[lo..].sort_unstable_by(|&a, &b| {
            cost(a).partial_cmp(&cost(b)).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });
        self.row_start.push(self.coeffs.len() as u32);
        self.rhs.push(constraint.rhs());
        self.origin.push(origin);
    }

    /// Copies `other` into `self`, reusing allocations.
    pub fn clone_from_arena(&mut self, other: &RowsArena) {
        self.coeffs.clear();
        self.coeffs.extend_from_slice(&other.coeffs);
        self.lits.clear();
        self.lits.extend_from_slice(&other.lits);
        self.row_start.clear();
        self.row_start.extend_from_slice(&other.row_start);
        self.rhs.clear();
        self.rhs.extend_from_slice(&other.rhs);
        self.origin.clear();
        self.origin.extend_from_slice(&other.origin);
        self.cover_order.clear();
        self.cover_order.extend_from_slice(&other.cover_order);
    }
}

/// The shared empty region (what a [`Subproblem`](crate::Subproblem)
/// without dynamic rows points at).
pub(crate) static EMPTY_ROWS: RowsArena = RowsArena::new();

/// Epoch-versioned registry of dynamic rows.
///
/// # Examples
///
/// ```
/// use pbo_bounds::{DynRowOrigin, DynamicRows};
/// use pbo_core::{Lit, PbConstraint};
///
/// let mut rows = DynamicRows::new();
/// assert_eq!(rows.epoch(), 0);
/// rows.begin_epoch();
/// let clause = PbConstraint::clause([Lit::new(0, true), Lit::new(1, false)]);
/// assert!(rows.push(clause.clone(), DynRowOrigin::PromotedClause));
/// assert!(!rows.push(clause, DynRowOrigin::PromotedClause), "duplicate rejected");
/// assert_eq!(rows.epoch(), 1);
/// assert_eq!(rows.len(), 1);
/// assert_eq!(rows.arena().len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DynamicRows {
    rows: Vec<DynRow>,
    arena: RowsArena,
    epoch: u64,
    /// Dense objective cost per literal code, consulted by
    /// [`RowsArena::push_row`] to precompute each row's cover order.
    /// Empty means "costless objective" (cover order = term order).
    lit_cost: Vec<i64>,
}

impl DynamicRows {
    /// Creates an empty registry at epoch 0 (the "no dynamic rows yet"
    /// state every consumer starts in), with a costless cover order.
    ///
    /// Registries whose rows will be consumed by a cover-walking bound
    /// (MIS) on an instance with a real objective must be created with
    /// [`DynamicRows::for_instance`] instead, so the precomputed cover
    /// order matches the objective — a cover walk over a mis-ordered row
    /// would overestimate the single-row LP minimum, which is unsound.
    pub fn new() -> DynamicRows {
        DynamicRows::default()
    }

    /// Creates an empty registry whose rows will carry `instance`'s
    /// objective costs in their precomputed fractional-cover order —
    /// the constructor every bounding consumer should use.
    pub fn for_instance(instance: &Instance) -> DynamicRows {
        let mut lit_cost = vec![0i64; 2 * instance.num_vars()];
        if let Some(obj) = instance.objective() {
            for &(c, l) in obj.terms() {
                lit_cost[l.code()] = c;
            }
        }
        DynamicRows { lit_cost, ..DynamicRows::default() }
    }

    /// Current epoch; bumped by [`DynamicRows::begin_epoch`]. Consumers
    /// re-install their row region only when this differs from the epoch
    /// they last saw.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The rows of the current epoch, in push order.
    pub fn rows(&self) -> &[DynRow] {
        &self.rows
    }

    /// The flat SoA mirror of the current epoch's rows (what the hot
    /// paths borrow).
    #[inline]
    pub fn arena(&self) -> &RowsArena {
        &self.arena
    }

    /// Number of rows in the current epoch.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the current epoch holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Starts a fresh epoch: clears every row and bumps the version.
    /// Call once per incumbent re-root, then [`DynamicRows::push`] the
    /// new row set.
    pub fn begin_epoch(&mut self) {
        self.rows.clear();
        self.arena.clear();
        self.epoch += 1;
    }

    /// Adds a row to the current epoch unless an identical row (same
    /// terms, same right-hand side) is already present or the row is
    /// empty. Returns `true` if the row was added.
    pub fn push(&mut self, constraint: PbConstraint, origin: DynRowOrigin) -> bool {
        if constraint.is_empty() {
            return false;
        }
        if self.rows.iter().any(|r| r.constraint == constraint) {
            return false;
        }
        self.arena.push_row(&constraint, origin, &self.lit_cost);
        self.rows.push(DynRow { constraint, origin });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::Lit;

    #[test]
    fn epochs_version_the_row_set() {
        let mut rows = DynamicRows::new();
        rows.begin_epoch();
        assert!(rows.push(PbConstraint::clause([Lit::new(0, true)]), DynRowOrigin::PromotedClause));
        assert_eq!((rows.epoch(), rows.len()), (1, 1));
        rows.begin_epoch();
        assert_eq!((rows.epoch(), rows.len()), (2, 0));
        assert!(rows.is_empty());
        assert!(rows.arena().is_empty());
    }

    #[test]
    fn duplicate_and_empty_rows_are_rejected() {
        let mut rows = DynamicRows::new();
        rows.begin_epoch();
        let c =
            PbConstraint::at_least(2, [Lit::new(0, true), Lit::new(1, true), Lit::new(2, true)]);
        assert!(rows.push(c.clone(), DynRowOrigin::CardinalityCut));
        assert!(!rows.push(c, DynRowOrigin::ObjectiveCut), "same row, any origin");
        assert!(!rows.push(PbConstraint::clause([]), DynRowOrigin::PromotedClause));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows.arena().len(), 1);
    }

    #[test]
    fn push_row_precomputes_the_cover_order() {
        // Costs per literal code: x0=6, x1=1, x2=4 (positives).
        let mut costs = vec![0i64; 8];
        costs[Lit::new(0, true).code()] = 6;
        costs[Lit::new(1, true).code()] = 1;
        costs[Lit::new(2, true).code()] = 4;
        let mut arena = RowsArena::new();
        // 3*x0 + 1*x1 + 2*x2 >= 4: ratios 2.0, 1.0, 2.0 — cover order
        // x1 first, then x0/x2 in term order (tie on ratio 2.0).
        let row = PbConstraint::try_new(
            vec![(3, Lit::new(0, true)), (1, Lit::new(1, true)), (2, Lit::new(2, true))],
            4,
        )
        .unwrap();
        arena.push_row(&row, DynRowOrigin::ObjectiveCut, &costs);
        assert_eq!(arena.cover_order(0), &[1, 0, 2]);
        // A second row gets absolute positions and its own order (the
        // clause constructor normalizes to [x1, x2], cheapest first here).
        let clause = PbConstraint::clause([Lit::new(2, true), Lit::new(1, true)]);
        arena.push_row(&clause, DynRowOrigin::PromotedClause, &costs);
        assert_eq!(arena.cover_order(1), &[3, 4], "x1 (cost 1) before x2 (cost 4)");
        // The flat clone carries the order along.
        let mut copy = RowsArena::new();
        copy.clone_from_arena(&arena);
        assert_eq!(copy.cover_order(0), arena.cover_order(0));
        assert_eq!(copy.cover_order(1), arena.cover_order(1));
        assert_eq!(copy.term_at(1).coeff, 1);
        // An empty cost table degrades to term order.
        let mut costless = RowsArena::new();
        costless.push_row(&row, DynRowOrigin::ObjectiveCut, &[]);
        assert_eq!(costless.cover_order(0), &[0, 1, 2]);
    }

    #[test]
    fn arena_mirrors_the_row_list() {
        let mut rows = DynamicRows::new();
        rows.begin_epoch();
        let a = PbConstraint::try_new(vec![(2, Lit::new(0, true)), (1, Lit::new(1, false))], 2)
            .unwrap();
        let b = PbConstraint::clause([Lit::new(2, true)]);
        rows.push(a.clone(), DynRowOrigin::ObjectiveCut);
        rows.push(b.clone(), DynRowOrigin::PromotedClause);
        let arena = rows.arena();
        assert_eq!(arena.len(), 2);
        for (k, c) in [a, b].iter().enumerate() {
            assert_eq!(arena.rhs(k), c.rhs());
            let terms: Vec<_> = arena.row(k).terms().collect();
            assert_eq!(terms, c.terms().to_vec(), "row {k}");
        }
        assert_eq!(arena.origin(0), DynRowOrigin::ObjectiveCut);
        assert_eq!(arena.origin(1), DynRowOrigin::PromotedClause);
        // The state-side copy path reuses allocations.
        let mut copy = RowsArena::new();
        copy.clone_from_arena(arena);
        assert_eq!(copy.len(), 2);
        assert_eq!(copy.row(1).terms().count(), 1);
    }
}
