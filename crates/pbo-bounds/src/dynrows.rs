//! Dynamic rows: derived constraints folded into the residual problem.
//!
//! The static rows of the residual problem come from the instance; this
//! module adds an **epoch-versioned registry of derived rows** — the
//! eq. 10 objective ("knapsack") cut, the eqs. 11–13 cardinality cost
//! cuts and selected learned clauses promoted to PB form — that the
//! bounding procedures see exactly like static rows through the
//! [`Subproblem`](crate::Subproblem) view.
//!
//! Every dynamic row must be *implied by the instance constraints
//! together with the incumbent bound* `cost <= upper - 1`: a bound
//! computed over static + dynamic rows is then a valid lower bound on
//! every completion **cheaper than the incumbent**, which is precisely
//! the set pruning reasons about (eq. 7). The registry is rebuilt on
//! each improving incumbent (`begin_epoch` + `push`); consumers compare
//! [`DynamicRows::epoch`] against the epoch they last installed and swap
//! their row region instead of rebuilding any per-node state.

use pbo_core::PbConstraint;

/// Why a dynamic row exists (kept for diagnostics and bench ablations).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DynRowOrigin {
    /// The eq. 10 objective cut `sum c_j l_j <= upper - 1` (normalized).
    ObjectiveCut,
    /// An eqs. 11–13 cardinality cost cut.
    CardinalityCut,
    /// A learned clause promoted to a PB row (`sum l_i >= 1`).
    PromotedClause,
}

/// One derived row of the residual problem.
#[derive(Clone, Debug)]
pub struct DynRow {
    /// The row itself, in normalized `>=` form.
    pub constraint: PbConstraint,
    /// Provenance of the row.
    pub origin: DynRowOrigin,
}

/// Epoch-versioned registry of dynamic rows.
///
/// # Examples
///
/// ```
/// use pbo_bounds::{DynRowOrigin, DynamicRows};
/// use pbo_core::{Lit, PbConstraint};
///
/// let mut rows = DynamicRows::new();
/// assert_eq!(rows.epoch(), 0);
/// rows.begin_epoch();
/// let clause = PbConstraint::clause([Lit::new(0, true), Lit::new(1, false)]);
/// assert!(rows.push(clause.clone(), DynRowOrigin::PromotedClause));
/// assert!(!rows.push(clause, DynRowOrigin::PromotedClause), "duplicate rejected");
/// assert_eq!(rows.epoch(), 1);
/// assert_eq!(rows.len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DynamicRows {
    rows: Vec<DynRow>,
    epoch: u64,
}

impl DynamicRows {
    /// Creates an empty registry at epoch 0 (the "no dynamic rows yet"
    /// state every consumer starts in).
    pub fn new() -> DynamicRows {
        DynamicRows::default()
    }

    /// Current epoch; bumped by [`DynamicRows::begin_epoch`]. Consumers
    /// re-install their row region only when this differs from the epoch
    /// they last saw.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The rows of the current epoch, in push order.
    pub fn rows(&self) -> &[DynRow] {
        &self.rows
    }

    /// Number of rows in the current epoch.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the current epoch holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Starts a fresh epoch: clears every row and bumps the version.
    /// Call once per incumbent re-root, then [`DynamicRows::push`] the
    /// new row set.
    pub fn begin_epoch(&mut self) {
        self.rows.clear();
        self.epoch += 1;
    }

    /// Adds a row to the current epoch unless an identical row (same
    /// terms, same right-hand side) is already present or the row is
    /// empty. Returns `true` if the row was added.
    pub fn push(&mut self, constraint: PbConstraint, origin: DynRowOrigin) -> bool {
        if constraint.is_empty() {
            return false;
        }
        if self.rows.iter().any(|r| r.constraint == constraint) {
            return false;
        }
        self.rows.push(DynRow { constraint, origin });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::Lit;

    #[test]
    fn epochs_version_the_row_set() {
        let mut rows = DynamicRows::new();
        rows.begin_epoch();
        assert!(rows.push(PbConstraint::clause([Lit::new(0, true)]), DynRowOrigin::PromotedClause));
        assert_eq!((rows.epoch(), rows.len()), (1, 1));
        rows.begin_epoch();
        assert_eq!((rows.epoch(), rows.len()), (2, 0));
        assert!(rows.is_empty());
    }

    #[test]
    fn duplicate_and_empty_rows_are_rejected() {
        let mut rows = DynamicRows::new();
        rows.begin_epoch();
        let c =
            PbConstraint::at_least(2, [Lit::new(0, true), Lit::new(1, true), Lit::new(2, true)]);
        assert!(rows.push(c.clone(), DynRowOrigin::CardinalityCut));
        assert!(!rows.push(c, DynRowOrigin::ObjectiveCut), "same row, any origin");
        assert!(!rows.push(PbConstraint::clause([]), DynRowOrigin::PromotedClause));
        assert_eq!(rows.len(), 1);
    }
}
