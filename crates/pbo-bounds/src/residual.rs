//! Incrementally maintained residual problem — the heart of the
//! lower-bounding hot path.
//!
//! The DATE'05 paper calls a lower-bound procedure at *every* search
//! node, but rebuilding the residual problem from scratch
//! ([`Subproblem::new`]) costs O(instance size) per node: every
//! constraint and every term is re-scanned, which dwarfs the greedy MIS
//! bound itself. [`ResidualState`] instead mirrors the solver's trail:
//!
//! * [`ResidualState::apply`] updates the per-constraint satisfied-weight
//!   and free-term counters, the active (unsatisfied) set, and the path
//!   cost in **O(occurrences of the changed variable)** — the same cost
//!   profile as counter-based PB propagation;
//! * [`ResidualState::unwind_to`] reverses applications exactly, so
//!   backjumps cost O(undone assignments);
//! * [`ResidualState::view`] snapshots the active set into a
//!   [`Subproblem`] in O(active constraints), never touching satisfied
//!   constraints or any term lists.
//!
//! The state owns **no term or occurrence storage of its own**: the
//! static rows' occurrence lists are read straight from the instance's
//! flat [`TermArena`](pbo_core::TermArena) CSR (one contiguous block,
//! shared by every consumer — and across local-search worker threads),
//! so `apply`/`unwind` walk two flat arrays instead of pointer-chasing
//! per-literal `Vec`s. Only the per-row counters and the dynamic-row
//! region are state-local.
//!
//! Synchronisation with the search engine uses the engine's trail
//! low-watermark (`Engine::sync_trail` in `pbo-engine`): the engine
//! reports the longest still-valid prefix, the state unwinds to it and
//! replays the new suffix. The rebuild path stays available as the
//! differential-testing oracle (see `tests/residual_differential.rs`).

use pbo_core::{Assignment, Instance, Lit};

use crate::dynrows::{DynamicRows, RowsArena};
use crate::subproblem::{ActiveEntry, Subproblem};

/// List-end sentinel of the active linked list.
const NIL: u32 = u32::MAX;

/// One occurrence of a literal in a dynamic row.
#[derive(Copy, Clone, Debug)]
struct Occ {
    constraint: u32,
    coeff: i64,
}

/// Cumulative effort counters of a [`ResidualState`] (for ablations).
#[derive(Copy, Clone, Default, Debug)]
pub struct ResidualStats {
    /// Literals applied.
    pub applied: u64,
    /// Literals unwound.
    pub unwound: u64,
    /// Views produced.
    pub views: u64,
}

/// The residual problem under the solver's current partial assignment,
/// maintained incrementally along the trail.
///
/// # Examples
///
/// ```
/// use pbo_core::{Assignment, InstanceBuilder, Var};
/// use pbo_bounds::{ResidualState, Subproblem};
///
/// let mut b = InstanceBuilder::new();
/// let v = b.new_vars(3);
/// b.add_at_least(2, v.iter().map(|x| x.positive()));
/// b.minimize(v.iter().map(|x| (1, x.positive())));
/// let inst = b.build()?;
///
/// let mut state = ResidualState::new(&inst);
/// let mut a = Assignment::new(3);
/// a.assign(Var::new(0), true);
/// state.apply(&inst, v[0].positive());
///
/// let sub = state.view(&inst, &a);
/// assert_eq!(sub.path_cost(), 1);
/// assert_eq!(sub.active()[0].residual_rhs, 1);
///
/// // Identical to a from-scratch rebuild:
/// let oracle = Subproblem::new(&inst, &a);
/// assert_eq!(sub.active(), oracle.active());
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ResidualState {
    // --- static per-instance data (built once) ---
    /// Number of static (instance) constraints; row indices at or above
    /// this refer to the dynamic-row region. Term and occurrence data of
    /// the static rows live in the instance's `TermArena` and are
    /// borrowed per call, never copied.
    num_static: usize,
    /// Objective cost per literal code (cost incurred when the literal
    /// becomes true).
    lit_cost: Vec<i64>,
    /// Right-hand side per constraint: `[0, num_static)` static, then
    /// one entry per dynamic row.
    rhs: Vec<i64>,
    // --- dynamic-row region (epoch-versioned; see `set_dynamic_rows`) ---
    /// Installed dynamic rows (flat SoA copy of the registry region).
    dyn_rows: RowsArena,
    /// Epoch of the installed region (matches `DynamicRows::epoch`).
    dyn_epoch: u64,
    /// Occurrence lists of the dynamic rows, indexed by literal code.
    /// The region is a handful of rows, so the sparse per-literal lists
    /// stay tiny; only lists a region actually touched are ever cleared.
    dyn_occ: Vec<Vec<Occ>>,
    /// Whether each literal (by code) is currently applied — lets a row
    /// installed mid-trail compute its counters in O(row terms).
    applied: Vec<bool>,
    // --- dynamic counters ---
    /// Path cost (objective offset included).
    path_cost: i64,
    /// Weight of currently-true literals per constraint.
    sat_weight: Vec<i64>,
    /// Number of unassigned literals per constraint.
    free_count: Vec<u32>,
    /// Active (unsatisfied) constraints as a doubly-linked list in
    /// ascending index order (dancing-links style). Unlinking on
    /// satisfaction is O(1); because unwinding relinks in exact reverse
    /// order (stack discipline), the stale `prev`/`next` of an unlinked
    /// node are still valid at relink time — so the list never needs
    /// sorting and views iterate in ascending order for free.
    active_head: u32,
    active_prev: Vec<u32>,
    active_next: Vec<u32>,
    num_active: usize,
    /// Literals applied so far, in order (the undo stack); its length is
    /// the synchronisation mark for the engine's trail watermark.
    trail: Vec<Lit>,
    /// Reusable view buffer.
    entries: Vec<ActiveEntry>,
    /// Effort counters.
    pub stats: ResidualStats,
}

impl ResidualState {
    /// Builds the state for `instance` with nothing assigned: every
    /// constraint active, counters at their initial values.
    pub fn new(instance: &Instance) -> ResidualState {
        let num_vars = instance.num_vars();
        let arena = instance.arena();
        let m = arena.num_rows();
        let mut rhs = Vec::with_capacity(m);
        let mut free_count = Vec::with_capacity(m);
        for ci in 0..m {
            rhs.push(arena.rhs(ci));
            free_count.push(arena.row_len(ci) as u32);
        }
        let mut lit_cost = vec![0i64; 2 * num_vars];
        let mut path_cost = 0;
        if let Some(obj) = instance.objective() {
            path_cost = obj.offset();
            for &(c, l) in obj.terms() {
                lit_cost[l.code()] = c;
            }
        }
        let active_prev: Vec<u32> =
            (0..m as u32).map(|i| if i == 0 { NIL } else { i - 1 }).collect();
        let active_next: Vec<u32> =
            (0..m as u32).map(|i| if i + 1 == m as u32 { NIL } else { i + 1 }).collect();
        ResidualState {
            num_static: m,
            lit_cost,
            rhs,
            dyn_rows: RowsArena::new(),
            dyn_epoch: 0,
            dyn_occ: vec![Vec::new(); 2 * num_vars],
            applied: vec![false; 2 * num_vars],
            path_cost,
            sat_weight: vec![0; m],
            free_count,
            active_head: if m == 0 { NIL } else { 0 },
            active_prev,
            active_next,
            num_active: m,
            trail: Vec::with_capacity(num_vars),
            entries: Vec::with_capacity(m),
            stats: ResidualStats::default(),
        }
    }

    /// Installs (or swaps) the dynamic-row region from the registry.
    ///
    /// A no-op when the registry's epoch is the one already installed;
    /// otherwise the old region is dropped and the new rows' counters are
    /// computed against the *currently applied* trail in O(region terms)
    /// — re-rooting on a new incumbent is a row-region swap, never a
    /// state rebuild. Safe at any trail depth: rows installed mid-trail
    /// unwind and replay exactly like static rows from then on.
    pub fn set_dynamic_rows(&mut self, rows: &DynamicRows) {
        if self.dyn_epoch == rows.epoch() && self.dyn_rows.len() == rows.len() {
            return;
        }
        // Drop the old region: clear only the occurrence lists it touched.
        for k in 0..self.dyn_rows.len() {
            for &lit in self.dyn_rows.row(k).lits {
                self.dyn_occ[lit.code()].clear();
            }
        }
        self.rhs.truncate(self.num_static);
        self.sat_weight.truncate(self.num_static);
        self.free_count.truncate(self.num_static);
        self.dyn_epoch = rows.epoch();
        let region = rows.arena();
        for k in 0..region.len() {
            let ci = (self.num_static + k) as u32;
            let mut sat = 0i64;
            let mut free = 0u32;
            for t in region.row(k).terms() {
                if self.applied[t.lit.code()] {
                    sat += t.coeff;
                } else if !self.applied[(!t.lit).code()] {
                    free += 1;
                }
                self.dyn_occ[t.lit.code()].push(Occ { constraint: ci, coeff: t.coeff });
            }
            self.rhs.push(region.rhs(k));
            self.sat_weight.push(sat);
            self.free_count.push(free);
        }
        self.dyn_rows.clone_from_arena(region);
    }

    /// Number of dynamic rows currently installed.
    #[inline]
    pub fn num_dynamic_rows(&self) -> usize {
        self.dyn_rows.len()
    }

    /// Epoch of the installed dynamic-row region.
    #[inline]
    pub fn dynamic_epoch(&self) -> u64 {
        self.dyn_epoch
    }

    /// Number of literals currently applied — the mark to hand to the
    /// engine's `sync_trail`.
    #[inline]
    pub fn len(&self) -> usize {
        self.trail.len()
    }

    /// Returns `true` if no literal is applied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.trail.is_empty()
    }

    /// Path cost of the applied literals (objective offset included).
    #[inline]
    pub fn path_cost(&self) -> i64 {
        self.path_cost
    }

    /// Number of currently active (unsatisfied) constraints.
    #[inline]
    pub fn num_active(&self) -> usize {
        self.num_active
    }

    /// Unlinks `ci` from the active list, leaving its own `prev`/`next`
    /// untouched for the LIFO relink.
    #[inline]
    fn deactivate(&mut self, ci: u32) {
        let p = self.active_prev[ci as usize];
        let n = self.active_next[ci as usize];
        if p == NIL {
            self.active_head = n;
        } else {
            self.active_next[p as usize] = n;
        }
        if n != NIL {
            self.active_prev[n as usize] = p;
        }
        self.num_active -= 1;
    }

    /// Relinks `ci`; valid only in exact reverse order of deactivation
    /// (which [`ResidualState::unwind_to`] guarantees).
    #[inline]
    fn activate(&mut self, ci: u32) {
        let p = self.active_prev[ci as usize];
        let n = self.active_next[ci as usize];
        if p == NIL {
            self.active_head = ci;
        } else {
            self.active_next[p as usize] = ci;
        }
        if n != NIL {
            self.active_prev[n as usize] = ci;
        }
        self.num_active += 1;
    }

    /// Applies one trail literal (the literal became **true**): updates
    /// path cost, satisfied weights, free counts and the active set in
    /// O(occurrences of the literal's variable), reading the occurrence
    /// CSR straight from `instance`'s arena.
    pub fn apply(&mut self, instance: &Instance, lit: Lit) {
        self.stats.applied += 1;
        self.path_cost += self.lit_cost[lit.code()];
        let arena = instance.arena();
        // Terms containing `lit` gain satisfied weight (and lose a free
        // term): the constraint may become satisfied.
        let (rows, coeffs) = arena.occurrences(lit);
        for k in 0..rows.len() {
            let ci = rows[k] as usize;
            let coeff = coeffs[k];
            let was = self.sat_weight[ci];
            self.sat_weight[ci] = was + coeff;
            self.free_count[ci] -= 1;
            if was < self.rhs[ci] && was + coeff >= self.rhs[ci] {
                self.deactivate(rows[k]);
            }
        }
        // Terms containing `!lit` merely lose a free term.
        let (neg_rows, _) = arena.occurrences(!lit);
        for &ci in neg_rows {
            self.free_count[ci as usize] -= 1;
        }
        // Dynamic rows: counter updates only (their activity is decided
        // at view time, so region swaps never disturb the linked list).
        for k in 0..self.dyn_occ[lit.code()].len() {
            let Occ { constraint, coeff } = self.dyn_occ[lit.code()][k];
            let ci = constraint as usize;
            self.sat_weight[ci] += coeff;
            self.free_count[ci] -= 1;
        }
        for k in 0..self.dyn_occ[(!lit).code()].len() {
            let ci = self.dyn_occ[(!lit).code()][k].constraint as usize;
            self.free_count[ci] -= 1;
        }
        self.applied[lit.code()] = true;
        self.trail.push(lit);
    }

    /// Unwinds applied literals until exactly `len` remain (mirror of
    /// [`ResidualState::apply`], in reverse order).
    ///
    /// # Panics
    ///
    /// Panics if more than [`ResidualState::len`] literals would be
    /// unwound.
    pub fn unwind_to(&mut self, instance: &Instance, len: usize) {
        assert!(len <= self.trail.len(), "cannot unwind below an empty trail");
        let arena = instance.arena();
        while self.trail.len() > len {
            let lit = self.trail.pop().expect("checked above");
            self.stats.unwound += 1;
            self.applied[lit.code()] = false;
            let (neg_rows, _) = arena.occurrences(!lit);
            for &ci in neg_rows {
                self.free_count[ci as usize] += 1;
            }
            // Reverse occurrence order: relinks into the active list must
            // mirror the unlinks of `apply` exactly (stack discipline).
            let (rows, coeffs) = arena.occurrences(lit);
            for k in (0..rows.len()).rev() {
                let ci = rows[k] as usize;
                let coeff = coeffs[k];
                let was = self.sat_weight[ci];
                self.sat_weight[ci] = was - coeff;
                self.free_count[ci] += 1;
                if was >= self.rhs[ci] && was - coeff < self.rhs[ci] {
                    self.activate(rows[k]);
                }
            }
            for k in 0..self.dyn_occ[(!lit).code()].len() {
                let ci = self.dyn_occ[(!lit).code()][k].constraint as usize;
                self.free_count[ci] += 1;
            }
            for k in 0..self.dyn_occ[lit.code()].len() {
                let Occ { constraint, coeff } = self.dyn_occ[lit.code()][k];
                let ci = constraint as usize;
                self.sat_weight[ci] -= coeff;
                self.free_count[ci] += 1;
            }
            self.path_cost -= self.lit_cost[lit.code()];
        }
    }

    /// Snapshots the current residual problem as a [`Subproblem`] view in
    /// O(active constraints) — no term list is touched.
    ///
    /// `assignment` must be the assignment whose trail this state mirrors
    /// (the bounds use it to enumerate free terms and false literals
    /// lazily); `instance` must be the instance the state was built from.
    pub fn view<'a>(
        &'a mut self,
        instance: &'a Instance,
        assignment: &'a Assignment,
    ) -> Subproblem<'a> {
        debug_assert_eq!(instance.num_constraints(), self.num_static, "instance mismatch");
        debug_assert_eq!(
            self.path_cost,
            instance.objective().map_or(0, |o| o.path_cost(assignment)),
            "path cost drifted from the assignment"
        );
        self.stats.views += 1;
        self.entries.clear();
        // The linked list is maintained in ascending constraint order, so
        // the view's iteration order is bit-identical with the rebuild
        // oracle (greedy tie-breaks match exactly) without any sorting.
        let mut ci = self.active_head;
        while ci != NIL {
            let i = ci as usize;
            let residual_rhs = self.rhs[i] - self.sat_weight[i];
            debug_assert!(residual_rhs >= 1, "satisfied constraint left active");
            self.entries.push(ActiveEntry {
                index: ci,
                residual_rhs,
                free_count: self.free_count[i],
            });
            ci = self.active_next[i];
        }
        debug_assert_eq!(self.entries.len(), self.num_active);
        // Dynamic rows, in ascending (registry) order after the static
        // rows — matching the rebuild oracle's iteration order. The
        // region is small (a handful of cuts), so the scan is O(region).
        for k in 0..self.dyn_rows.len() {
            let i = self.num_static + k;
            if self.sat_weight[i] < self.rhs[i] {
                self.entries.push(ActiveEntry {
                    index: i as u32,
                    residual_rhs: self.rhs[i] - self.sat_weight[i],
                    free_count: self.free_count[i],
                });
            }
        }
        Subproblem::from_parts(
            instance,
            assignment,
            self.path_cost,
            &self.entries,
            &self.lit_cost,
            &self.dyn_rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::{InstanceBuilder, Value, Var};

    fn assert_matches_rebuild(
        state: &mut ResidualState,
        instance: &Instance,
        assignment: &Assignment,
    ) {
        let oracle = Subproblem::new(instance, assignment);
        let view = state.view(instance, assignment);
        assert_eq!(view.path_cost(), oracle.path_cost(), "path cost");
        assert_eq!(view.active(), oracle.active(), "active set");
    }

    fn demo_instance() -> (Instance, Vec<Var>) {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(4);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_linear(
            vec![(3, v[1].positive()), (2, v[2].negative()), (1, v[3].positive())],
            pbo_core::RelOp::Ge,
            4,
        );
        b.add_at_least(2, v.iter().map(|x| x.positive()));
        b.minimize([(2, v[0].positive()), (1, v[1].positive()), (5, v[2].negative())]);
        (b.build().unwrap(), v)
    }

    #[test]
    fn apply_unwind_roundtrip_matches_rebuild() {
        let (inst, v) = demo_instance();
        let mut state = ResidualState::new(&inst);
        let mut a = Assignment::new(4);
        assert_matches_rebuild(&mut state, &inst, &a);

        a.assign(Var::new(1), true);
        state.apply(&inst, v[1].positive());
        assert_matches_rebuild(&mut state, &inst, &a);

        a.assign(Var::new(2), false);
        state.apply(&inst, v[2].negative());
        assert_matches_rebuild(&mut state, &inst, &a);

        a.assign(Var::new(0), false);
        state.apply(&inst, v[0].negative());
        assert_matches_rebuild(&mut state, &inst, &a);

        // Unwind two literals.
        a.unassign(Var::new(0));
        a.unassign(Var::new(2));
        state.unwind_to(&inst, 1);
        assert_matches_rebuild(&mut state, &inst, &a);

        // And everything.
        a.unassign(Var::new(1));
        state.unwind_to(&inst, 0);
        assert_matches_rebuild(&mut state, &inst, &a);
        assert_eq!(state.num_active(), inst.num_constraints());
    }

    #[test]
    fn satisfied_constraints_leave_and_reenter_active_set() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_clause([v[0].positive(), v[1].positive()]);
        let inst = b.build().unwrap();
        let mut state = ResidualState::new(&inst);
        assert_eq!(state.num_active(), 1);
        state.apply(&inst, v[0].positive());
        assert_eq!(state.num_active(), 0);
        state.unwind_to(&inst, 0);
        assert_eq!(state.num_active(), 1);
    }

    #[test]
    fn path_cost_counts_negative_literal_costs() {
        let (inst, v) = demo_instance();
        let mut state = ResidualState::new(&inst);
        state.apply(&inst, v[2].negative());
        assert_eq!(state.path_cost(), 5);
        state.unwind_to(&inst, 0);
        assert_eq!(state.path_cost(), 0);
    }

    #[test]
    fn view_exposes_dense_lit_costs() {
        let (inst, v) = demo_instance();
        let mut state = ResidualState::new(&inst);
        let a = Assignment::new(4);
        let view = state.view(&inst, &a);
        assert_eq!(view.lit_cost(v[2].negative()), 5);
        assert_eq!(view.lit_cost(v[2].positive()), 0);
        assert_eq!(view.lit_cost(v[3].positive()), 0);
    }

    #[test]
    fn stats_count_effort() {
        let (inst, v) = demo_instance();
        let mut state = ResidualState::new(&inst);
        let mut a = Assignment::new(4);
        a.assign(Var::new(0), true);
        state.apply(&inst, v[0].positive());
        let _ = state.view(&inst, &a);
        state.unwind_to(&inst, 0);
        assert_eq!(state.stats.applied, 1);
        assert_eq!(state.stats.unwound, 1);
        assert_eq!(state.stats.views, 1);
        assert_eq!(a.value(Var::new(0)), Value::True);
    }
}
