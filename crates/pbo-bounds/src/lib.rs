//! Lower-bound estimation for pseudo-Boolean optimization.
//!
//! This crate implements the three bounding procedures studied by the
//! DATE'05 paper, each paired with the *bound-conflict explanation* that
//! sec. 4 requires for non-chronological backtracking:
//!
//! * [`MisBound`] — greedy maximum independent set of constraints
//!   (sec. 3, the classic covering bound);
//! * [`LagrangianBound`] — Lagrangian relaxation solved by subgradient
//!   ascent (sec. 3.2), explanation from constraints with nonzero
//!   multipliers plus the `alpha_j` filter of sec. 4.3;
//! * [`LprBound`] — linear-programming relaxation (sec. 3.1) solved by
//!   the warm-started dual simplex of [`pbo_lp`], explanation from the
//!   zero-slack constraint set `S` (eq. 9), or Farkas rows when the
//!   relaxation is infeasible;
//! * [`NoBound`] — the "plain" configuration of Table 1 (path cost only).
//!
//! All procedures implement [`LowerBound`] over a [`Subproblem`] — the
//! residual problem under the solver's current partial assignment — and
//! return an [`LbOutcome`]: a bound on the *total* cost of any completion
//! (`P.path + P.lower` in the paper's terms) plus the explanation literal
//! set `omega_pl`.
//!
//! The residual problem itself is produced either by a from-scratch
//! rebuild ([`Subproblem::new`], O(instance) per node — the
//! differential-testing oracle) or by [`ResidualState`], which maintains
//! the per-constraint counters incrementally along the solver's trail in
//! O(Δ) per assignment and snapshots a bit-identical view in O(active
//! constraints).
//!
//! # Examples
//!
//! ```
//! use pbo_core::{Assignment, InstanceBuilder};
//! use pbo_bounds::{LowerBound, MisBound, NoBound, Subproblem};
//!
//! let mut b = InstanceBuilder::new();
//! let v = b.new_vars(2);
//! b.add_clause([v[0].positive(), v[1].positive()]);
//! b.minimize([(2, v[0].positive()), (3, v[1].positive())]);
//! let inst = b.build()?;
//! let a = Assignment::new(2);
//! let sub = Subproblem::new(&inst, &a);
//!
//! assert_eq!(NoBound::new().lower_bound(&sub, None).bound, 0);
//! assert_eq!(MisBound::new().lower_bound(&sub, None).bound, 2);
//! # Ok::<(), pbo_core::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dynrows;
mod lagrangian;
mod lpr;
mod mis;
mod residual;
mod subproblem;

pub use dynrows::{DynRow, DynRowOrigin, DynamicRows, RowsArena};
pub use lagrangian::{LagrangianBound, LagrangianConfig};
pub use lpr::LprBound;
pub use mis::MisBound;
pub use residual::{ResidualState, ResidualStats};
pub use subproblem::{ActiveEntry, Subproblem};

use pbo_core::Lit;

/// Result of one lower-bound computation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LbOutcome {
    /// Lower bound on the cost of *any* feasible completion of the
    /// current partial assignment, path cost included
    /// (`P.path + P.lower`). Meaningless when `infeasible` is set.
    pub bound: i64,
    /// The residual problem was proven infeasible (e.g. the LP relaxation
    /// has no solution): the subtree contains no feasible completion at
    /// all.
    pub infeasible: bool,
    /// The paper's `omega_pl`: currently-false literals explaining the
    /// bound (eq. 9). Together with `omega_pp` (built by the solver from
    /// the costed true literals, eq. 8) they form the bound-conflict
    /// clause `omega_bc`.
    pub explanation: Vec<Lit>,
}

impl LbOutcome {
    /// A finite bound with its explanation.
    pub fn bound(bound: i64, explanation: Vec<Lit>) -> LbOutcome {
        LbOutcome { bound, infeasible: false, explanation }
    }

    /// An infeasibility outcome with its explanation.
    pub fn infeasible(explanation: Vec<Lit>) -> LbOutcome {
        LbOutcome { bound: i64::MAX, infeasible: true, explanation }
    }

    /// Returns `true` if this outcome prunes against the given upper
    /// bound (`bound >= upper`, eq. 7, or infeasibility).
    pub fn prunes(&self, upper: i64) -> bool {
        self.infeasible || self.bound >= upper
    }
}

/// A lower-bound estimation procedure (sec. 3 of the paper).
///
/// Implementations may keep internal state for warm starting (the LP
/// basis, the Lagrangian multipliers); the solver calls the bound once
/// per search node.
///
/// Implement **at least one** of [`lower_bound`](LowerBound::lower_bound)
/// and [`lower_bound_into`](LowerBound::lower_bound_into) — each defaults
/// to the other. Allocation-free kernels (MIS, LGR) implement the `into`
/// variant, writing the explanation into the caller's reusable buffer;
/// per-node callers (the solver's bound pipeline) hold one [`LbOutcome`]
/// and call `lower_bound_into` so the steady state performs no heap
/// allocation at all.
pub trait LowerBound {
    /// Short identifier used in benchmark tables (`"mis"`, `"lgr"`,
    /// `"lpr"`, `"none"`).
    fn name(&self) -> &'static str;

    /// Computes a lower bound for the residual problem. `upper` is the
    /// current best solution (`P.upper`), which implementations may use
    /// for early termination once the bound already prunes.
    fn lower_bound(&mut self, sub: &Subproblem<'_>, upper: Option<i64>) -> LbOutcome {
        let mut out = LbOutcome::bound(0, Vec::new());
        self.lower_bound_into(sub, upper, &mut out);
        out
    }

    /// Like [`lower_bound`](LowerBound::lower_bound), but writes the
    /// result into a caller-owned outcome, reusing the explanation
    /// buffer's capacity across calls.
    fn lower_bound_into(&mut self, sub: &Subproblem<'_>, upper: Option<i64>, out: &mut LbOutcome) {
        *out = self.lower_bound(sub, upper);
    }
}

/// The trivial bound: path cost only (the paper's "plain" bsolo).
#[derive(Clone, Debug, Default)]
pub struct NoBound {
    _private: (),
}

impl NoBound {
    /// Creates the trivial bound.
    pub fn new() -> NoBound {
        NoBound { _private: () }
    }
}

impl LowerBound for NoBound {
    fn name(&self) -> &'static str {
        "none"
    }

    fn lower_bound_into(&mut self, sub: &Subproblem<'_>, _upper: Option<i64>, out: &mut LbOutcome) {
        out.bound = sub.path_cost();
        out.infeasible = false;
        out.explanation.clear();
    }
}

#[cfg(test)]
mod outcome_tests {
    use super::*;

    #[test]
    fn prunes_respects_threshold() {
        let o = LbOutcome::bound(5, vec![]);
        assert!(o.prunes(5));
        assert!(o.prunes(4));
        assert!(!o.prunes(6));
        assert!(LbOutcome::infeasible(vec![]).prunes(i64::MAX));
    }

    #[test]
    fn no_bound_returns_path_cost() {
        use pbo_core::{Assignment, InstanceBuilder, Var};
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.minimize([(7, v[0].positive())]);
        let inst = b.build().unwrap();
        let mut a = Assignment::new(2);
        a.assign(Var::new(0), true);
        let sub = Subproblem::new(&inst, &a);
        let out = NoBound::new().lower_bound(&sub, None);
        assert_eq!(out.bound, 7);
        assert!(out.explanation.is_empty());
    }
}
