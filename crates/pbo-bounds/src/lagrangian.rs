//! Lower bounding by Lagrangian relaxation (sec. 3.2 of the paper).
//!
//! The residual constraints `A x >= b` are dualized into the objective
//! with multipliers `mu >= 0`:
//!
//! ```text
//! L(mu) = min_{x in {0,1}^n}  c x + mu (b - A x)
//!       = mu b + sum_j min(0, alpha_j),     alpha_j = c_j - mu A_j
//! ```
//!
//! By the Lagrangian bounding principle, `L(mu)` is a lower bound on the
//! residual optimum for *any* `mu >= 0`; `ceil(L)` therefore prunes like
//! the LP bound. The multiplier vector is improved by projected
//! subgradient ascent with Held–Karp style step halving, and is
//! warm-started across search nodes (the paper observes LGR's weakness is
//! slow convergence — warm starting is what makes it usable at all).
//!
//! The bound-conflict explanation (sec. 4.3) is built from the
//! constraints with nonzero multipliers, refined by the `alpha_j` filter:
//! an assignment whose flip could only *increase* `L` is not responsible
//! for the bound and is excluded from `omega_pl`.

use std::collections::HashMap;

use pbo_core::{Lit, Value};

use crate::subproblem::Subproblem;
use crate::{LbOutcome, LowerBound};

/// Tuning knobs for the subgradient ascent.
#[derive(Clone, Debug)]
pub struct LagrangianConfig {
    /// Maximum subgradient iterations per bound computation.
    pub max_iterations: usize,
    /// Initial step-length multiplier (Held–Karp `lambda`).
    pub initial_lambda: f64,
    /// Halve `lambda` after this many non-improving iterations.
    pub halving_patience: usize,
    /// Stop when `lambda` falls below this value.
    pub min_lambda: f64,
    /// Treat multipliers below this as zero when building explanations.
    pub mu_tolerance: f64,
    /// Apply the sec. 4.3 `alpha_j` filter to shrink `omega_pl`.
    pub alpha_filter: bool,
}

impl Default for LagrangianConfig {
    fn default() -> LagrangianConfig {
        LagrangianConfig {
            max_iterations: 60,
            initial_lambda: 2.0,
            halving_patience: 4,
            min_lambda: 1e-3,
            mu_tolerance: 1e-7,
            alpha_filter: true,
        }
    }
}

/// Lagrangian-relaxation lower bound with warm-started multipliers.
///
/// # Examples
///
/// ```
/// use pbo_core::{Assignment, InstanceBuilder};
/// use pbo_bounds::{LagrangianBound, LowerBound, Subproblem};
///
/// let mut b = InstanceBuilder::new();
/// let v = b.new_vars(2);
/// b.add_clause([v[0].positive(), v[1].positive()]);
/// b.minimize([(2, v[0].positive()), (3, v[1].positive())]);
/// let inst = b.build()?;
/// let a = Assignment::new(2);
/// let out = LagrangianBound::new(inst.num_constraints())
///     .lower_bound(&Subproblem::new(&inst, &a), None);
/// assert_eq!(out.bound, 2); // optimal multiplier mu = 2 proves cost >= 2
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
#[derive(Clone, Debug)]
pub struct LagrangianBound {
    config: LagrangianConfig,
    /// Multipliers indexed by original constraint index (warm start).
    mu: Vec<f64>,
}

impl LagrangianBound {
    /// Creates the bound procedure for an instance with
    /// `num_constraints` constraints, multipliers initialized to zero.
    pub fn new(num_constraints: usize) -> LagrangianBound {
        LagrangianBound {
            config: LagrangianConfig::default(),
            mu: vec![0.0; num_constraints],
        }
    }

    /// Creates the bound procedure with explicit configuration.
    pub fn with_config(num_constraints: usize, config: LagrangianConfig) -> LagrangianBound {
        LagrangianBound { config, mu: vec![0.0; num_constraints] }
    }

    /// Read access to the current multipliers (for diagnostics/ablation).
    pub fn multipliers(&self) -> &[f64] {
        &self.mu
    }
}

impl LowerBound for LagrangianBound {
    fn name(&self) -> &'static str {
        "lgr"
    }

    fn lower_bound(&mut self, sub: &Subproblem<'_>, upper: Option<i64>) -> LbOutcome {
        let assignment = sub.assignment();
        let instance = sub.instance();

        // --- Build the residual problem in variable space. ---
        // Local dense indices for free variables appearing anywhere
        // relevant (active constraints or objective).
        let mut local: HashMap<usize, usize> = HashMap::new();
        let mut local_vars: Vec<usize> = Vec::new();
        let index_of = |v: usize, local: &mut HashMap<usize, usize>,
                        local_vars: &mut Vec<usize>| {
            *local.entry(v).or_insert_with(|| {
                local_vars.push(v);
                local_vars.len() - 1
            })
        };

        // Residual cost vector: cost c on literal l becomes +c on the
        // variable (positive l) or a constant c plus -c on the variable
        // (negative l).
        let mut cost: Vec<f64> = Vec::new();
        let mut constant = 0i64;
        if let Some(obj) = instance.objective() {
            for &(c, l) in obj.terms() {
                if assignment.lit_value(l) != Value::Unassigned {
                    continue;
                }
                let li = index_of(l.var().index(), &mut local, &mut local_vars);
                if li >= cost.len() {
                    cost.resize(li + 1, 0.0);
                }
                if l.is_positive() {
                    cost[li] += c as f64;
                } else {
                    constant += c;
                    cost[li] -= c as f64;
                }
            }
        }

        // Rows: coefficient lists over local vars plus adjusted rhs.
        let mut rows: Vec<(usize, Vec<(usize, f64)>, f64)> = Vec::new();
        for ac in sub.active() {
            let mut terms = Vec::with_capacity(ac.free_terms.len());
            let mut rhs = ac.residual_rhs as f64;
            for t in &ac.free_terms {
                let li = index_of(t.lit.var().index(), &mut local, &mut local_vars);
                if li >= cost.len() {
                    cost.resize(li + 1, 0.0);
                }
                if t.lit.is_positive() {
                    terms.push((li, t.coeff as f64));
                } else {
                    // a * ~x = a - a*x : constant a moves into the rhs.
                    terms.push((li, -(t.coeff as f64)));
                    rhs -= t.coeff as f64;
                }
            }
            rows.push((ac.index, terms, rhs));
        }
        let nv = cost.len().max(local_vars.len());
        cost.resize(nv, 0.0);

        let base = sub.path_cost() + constant;

        // --- Projected subgradient ascent on L(mu). ---
        let mut mu: Vec<f64> = rows.iter().map(|&(orig, _, _)| self.mu[orig]).collect();
        let mut best_l = f64::NEG_INFINITY;
        let mut best_mu = mu.clone();
        let mut lambda = self.config.initial_lambda;
        let mut stale = 0usize;
        let mut alpha = vec![0.0f64; nv];
        let target_gap = upper.map(|u| (u - base) as f64);

        for _ in 0..self.config.max_iterations.max(1) {
            // alpha_j = c_j - sum_i mu_i a_ij ; L = mu.b + sum min(0, alpha).
            alpha.copy_from_slice(&cost);
            let mut l_val = 0.0;
            for (r, (_, terms, rhs)) in rows.iter().enumerate() {
                l_val += mu[r] * rhs;
                for &(j, a) in terms {
                    alpha[j] -= mu[r] * a;
                }
            }
            for &a in &alpha {
                if a < 0.0 {
                    l_val += a;
                }
            }
            if l_val > best_l + 1e-12 {
                best_l = l_val;
                best_mu.copy_from_slice(&mu);
                stale = 0;
            } else {
                stale += 1;
                if stale >= self.config.halving_patience {
                    lambda *= 0.5;
                    stale = 0;
                    if lambda < self.config.min_lambda {
                        break;
                    }
                }
            }
            // Early exit once the bound prunes.
            if let Some(gap) = target_gap {
                if best_l >= gap {
                    break;
                }
            }
            // Subgradient g = b - A x(mu) with x_j = [alpha_j < 0].
            let mut norm = 0.0;
            let mut g = vec![0.0f64; rows.len()];
            for (r, (_, terms, rhs)) in rows.iter().enumerate() {
                let mut act = 0.0;
                for &(j, a) in terms {
                    if alpha[j] < 0.0 {
                        act += a;
                    }
                }
                g[r] = rhs - act;
                norm += g[r] * g[r];
            }
            if norm < 1e-12 {
                break; // relaxed solution feasible: L is locally maximal
            }
            let target = match target_gap {
                Some(gap) if gap > best_l => gap,
                _ => best_l.abs().max(1.0) * 0.05 + best_l + 1.0,
            };
            let step = lambda * (target - l_val).max(1e-3) / norm;
            for (r, gr) in g.iter().enumerate() {
                mu[r] = (mu[r] + step * gr).max(0.0);
            }
        }

        // Persist the best multipliers for warm starting.
        for (r, &(orig, _, _)) in rows.iter().enumerate() {
            self.mu[orig] = best_mu[r];
        }

        // Note: L may legitimately be negative (negative variable-space
        // costs arise from objective terms on negative literals), so the
        // ceiling must not be clamped to zero.
        let bound = if best_l.is_finite() {
            base + (best_l - 1e-9).ceil() as i64
        } else {
            base
        };

        // --- Explanation: S = { rows with mu_i > 0 } (sec. 4.3). ---
        let s_rows: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(r, _)| best_mu[*r] > self.config.mu_tolerance)
            .map(|(_, (orig, _, _))| *orig)
            .collect();
        let mut explanation: Vec<Lit> = Vec::new();
        // alpha for *assigned* variables, needed by the filter: computed
        // over the original constraints in S in variable space.
        let mut assigned_alpha: HashMap<usize, f64> = HashMap::new();
        if self.config.alpha_filter {
            for (r, &(orig, _, _)) in rows.iter().enumerate() {
                if best_mu[r] <= self.config.mu_tolerance {
                    continue;
                }
                for t in instance.constraints()[orig].terms() {
                    if assignment.lit_value(t.lit) == Value::Unassigned {
                        continue;
                    }
                    let v = t.lit.var().index();
                    let coeff = if t.lit.is_positive() {
                        t.coeff as f64
                    } else {
                        -(t.coeff as f64)
                    };
                    *assigned_alpha.entry(v).or_insert_with(|| {
                        // Start from the variable-space objective cost.
                        instance.objective().map_or(0.0, |o| {
                            o.term_of_var(t.lit.var()).map_or(0.0, |(c, l)| {
                                if l.is_positive() {
                                    c as f64
                                } else {
                                    -(c as f64)
                                }
                            })
                        })
                    }) -= best_mu[r] * coeff;
                }
            }
        }
        for &orig in &s_rows {
            for l in sub.false_literals_of(orig) {
                if self.config.alpha_filter {
                    let v = l.var();
                    let a = assigned_alpha.get(&v.index()).copied().unwrap_or(0.0);
                    let x_is_one = assignment.value(v) == Value::True;
                    // sec 4.3: x_j = 0 with alpha_j > 0 (raising it would
                    // raise L) or x_j = 1 with alpha_j < 0: not responsible.
                    if (!x_is_one && a > 1e-9) || (x_is_one && a < -1e-9) {
                        continue;
                    }
                }
                explanation.push(l);
            }
        }
        explanation.sort();
        explanation.dedup();
        LbOutcome::bound(bound, explanation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::{brute_force, Assignment, InstanceBuilder, Var};

    #[test]
    fn single_clause_bound_reaches_cheapest_literal() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.minimize([(2, v[0].positive()), (3, v[1].positive())]);
        let inst = b.build().unwrap();
        let a = Assignment::new(2);
        let out = LagrangianBound::new(inst.num_constraints())
            .lower_bound(&Subproblem::new(&inst, &a), None);
        assert_eq!(out.bound, 2);
        assert!(!out.infeasible);
    }

    #[test]
    fn cardinality_constraint_bound() {
        // at least 2 of 3, costs 1,2,3: optimum 3, LGR should reach >= 2.
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_at_least(2, v.iter().map(|x| x.positive()));
        b.minimize(v.iter().enumerate().map(|(i, x)| ((i + 1) as i64, x.positive())));
        let inst = b.build().unwrap();
        let a = Assignment::new(3);
        let out = LagrangianBound::new(inst.num_constraints())
            .lower_bound(&Subproblem::new(&inst, &a), None);
        assert!(out.bound >= 2, "bound {} too weak", out.bound);
        assert!(out.bound <= 3, "bound {} exceeds optimum", out.bound);
    }

    #[test]
    fn bound_never_exceeds_optimum_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x161);
        for round in 0..60 {
            let n = rng.gen_range(3..9);
            let mut b = InstanceBuilder::new();
            let vars = b.new_vars(n);
            for _ in 0..rng.gen_range(2..8) {
                let k = rng.gen_range(1..=3.min(n));
                let mut idxs: Vec<usize> = (0..n).collect();
                for i in 0..k {
                    let j = rng.gen_range(i..n);
                    idxs.swap(i, j);
                }
                let terms: Vec<(i64, pbo_core::Lit)> = idxs[..k]
                    .iter()
                    .map(|&i| (rng.gen_range(1..4), vars[i].lit(rng.gen_bool(0.7))))
                    .collect();
                let maxw: i64 = terms.iter().map(|t| t.0).sum();
                b.add_linear(terms, pbo_core::RelOp::Ge, rng.gen_range(1..=maxw));
            }
            b.minimize(vars.iter().map(|v| (rng.gen_range(0..6), v.positive())));
            let inst = b.build().unwrap();
            let Some(opt) = brute_force(&inst).cost() else { continue };
            let a = Assignment::new(n);
            let out = LagrangianBound::new(inst.num_constraints())
                .lower_bound(&Subproblem::new(&inst, &a), None);
            assert!(!out.infeasible, "round {round}");
            assert!(
                out.bound <= opt,
                "round {round}: LGR bound {} exceeds optimum {opt}",
                out.bound
            );
        }
    }

    #[test]
    fn bound_valid_under_partial_assignment_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x162);
        for round in 0..40 {
            let n = rng.gen_range(4..9);
            let mut b = InstanceBuilder::new();
            let vars = b.new_vars(n);
            for _ in 0..rng.gen_range(2..6) {
                let k = rng.gen_range(2..=3.min(n));
                let mut idxs: Vec<usize> = (0..n).collect();
                for i in 0..k {
                    let j = rng.gen_range(i..n);
                    idxs.swap(i, j);
                }
                b.add_at_least(1, idxs[..k].iter().map(|&i| vars[i].lit(rng.gen_bool(0.8))));
            }
            b.minimize(vars.iter().map(|v| (rng.gen_range(0..5), v.positive())));
            let inst = b.build().unwrap();
            // Partial assignment on the first variable.
            let mut a = Assignment::new(n);
            a.assign(Var::new(0), rng.gen_bool(0.5));
            // Best completion cost by enumeration.
            let mut best: Option<i64> = None;
            for mask in 0u64..(1 << (n - 1)) {
                let mut vals = vec![false; n];
                vals[0] = a.value(Var::new(0)) == pbo_core::Value::True;
                for i in 1..n {
                    vals[i] = (mask >> (i - 1)) & 1 == 1;
                }
                if inst.is_feasible(&vals) {
                    let c = inst.cost_of(&vals);
                    best = Some(best.map_or(c, |b: i64| b.min(c)));
                }
            }
            let Some(opt) = best else { continue };
            let out = LagrangianBound::new(inst.num_constraints())
                .lower_bound(&Subproblem::new(&inst, &a), None);
            assert!(
                out.bound <= opt,
                "round {round}: LGR bound {} exceeds completion optimum {opt}",
                out.bound
            );
        }
    }

    #[test]
    fn warm_start_reuses_multipliers() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.minimize([(2, v[0].positive()), (3, v[1].positive())]);
        let inst = b.build().unwrap();
        let a = Assignment::new(2);
        let mut lgr = LagrangianBound::new(inst.num_constraints());
        let _ = lgr.lower_bound(&Subproblem::new(&inst, &a), None);
        assert!(lgr.multipliers()[0] > 0.0, "multiplier should be persisted");
        // Second call starts from the good multiplier and must not regress.
        let out = lgr.lower_bound(&Subproblem::new(&inst, &a), None);
        assert_eq!(out.bound, 2);
    }

    #[test]
    fn explanation_mentions_false_literals_of_active_rows() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_clause([v[0].positive(), v[1].positive(), v[2].positive()]);
        b.minimize([(5, v[1].positive()), (5, v[2].positive())]);
        let inst = b.build().unwrap();
        let mut a = Assignment::new(3);
        a.assign(Var::new(0), false);
        let out = LagrangianBound::new(inst.num_constraints())
            .lower_bound(&Subproblem::new(&inst, &a), None);
        assert!(out.bound >= 5);
        assert!(out.explanation.contains(&v[0].positive()), "{:?}", out.explanation);
    }

    #[test]
    fn pure_satisfaction_gives_zero_bound() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_clause([v[0].positive(), v[1].positive()]);
        let inst = b.build().unwrap();
        let a = Assignment::new(2);
        let out = LagrangianBound::new(inst.num_constraints())
            .lower_bound(&Subproblem::new(&inst, &a), None);
        assert_eq!(out.bound, 0);
    }
}
