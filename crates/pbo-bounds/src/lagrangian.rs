//! Lower bounding by Lagrangian relaxation (sec. 3.2 of the paper).
//!
//! The residual constraints `A x >= b` are dualized into the objective
//! with multipliers `mu >= 0`:
//!
//! ```text
//! L(mu) = min_{x in {0,1}^n}  c x + mu (b - A x)
//!       = mu b + sum_j min(0, alpha_j),     alpha_j = c_j - mu A_j
//! ```
//!
//! By the Lagrangian bounding principle, `L(mu)` is a lower bound on the
//! residual optimum for *any* `mu >= 0`; `ceil(L)` therefore prunes like
//! the LP bound. The multiplier vector is improved by projected
//! subgradient ascent with Held–Karp style step halving, and is
//! warm-started across search nodes (the paper observes LGR's weakness is
//! slow convergence — warm starting is what makes it usable at all).
//!
//! The bound-conflict explanation (sec. 4.3) is built from the
//! constraints with nonzero multipliers, refined by the `alpha_j` filter:
//! an assignment whose flip could only *increase* `L` is not responsible
//! for the bound and is excluded from `omega_pl`.
//!
//! The residual rows are assembled from the [`Subproblem`] view into flat
//! (CSR-style) scratch buffers owned by the procedure, so repeated bound
//! computations reuse their allocations. Variable→local-index lookup uses
//! an epoch-stamped dense map (one `u32` stamp per variable, bumped per
//! bound call) instead of a hash map, making row assembly allocation- and
//! hash-free after warm-up.

use pbo_core::Value;

use crate::subproblem::Subproblem;
use crate::{LbOutcome, LowerBound};

/// Tuning knobs for the subgradient ascent.
#[derive(Clone, Debug)]
pub struct LagrangianConfig {
    /// Maximum subgradient iterations per bound computation.
    pub max_iterations: usize,
    /// Initial step-length multiplier (Held–Karp `lambda`).
    pub initial_lambda: f64,
    /// Halve `lambda` after this many non-improving iterations.
    pub halving_patience: usize,
    /// Stop when `lambda` falls below this value.
    pub min_lambda: f64,
    /// Treat multipliers below this as zero when building explanations.
    pub mu_tolerance: f64,
    /// Apply the sec. 4.3 `alpha_j` filter to shrink `omega_pl`.
    pub alpha_filter: bool,
}

impl Default for LagrangianConfig {
    fn default() -> LagrangianConfig {
        LagrangianConfig {
            max_iterations: 60,
            initial_lambda: 2.0,
            halving_patience: 4,
            min_lambda: 1e-3,
            mu_tolerance: 1e-7,
            alpha_filter: true,
        }
    }
}

/// The flattened residual rows of one bound computation (reused scratch).
#[derive(Clone, Debug, Default)]
struct Rows {
    /// Original constraint index per row.
    orig: Vec<usize>,
    /// Adjusted right-hand side per row.
    rhs: Vec<f64>,
    /// CSR offsets into `terms` (length `rows + 1`).
    start: Vec<usize>,
    /// Flattened `(local var, coefficient)` terms of all rows.
    terms: Vec<(usize, f64)>,
}

impl Rows {
    fn clear(&mut self) {
        self.orig.clear();
        self.rhs.clear();
        self.start.clear();
        self.start.push(0);
        self.terms.clear();
    }

    fn len(&self) -> usize {
        self.orig.len()
    }

    fn row_terms(&self, r: usize) -> &[(usize, f64)] {
        &self.terms[self.start[r]..self.start[r + 1]]
    }
}

/// Lagrangian-relaxation lower bound with warm-started multipliers.
///
/// # Examples
///
/// ```
/// use pbo_core::{Assignment, InstanceBuilder};
/// use pbo_bounds::{LagrangianBound, LowerBound, Subproblem};
///
/// let mut b = InstanceBuilder::new();
/// let v = b.new_vars(2);
/// b.add_clause([v[0].positive(), v[1].positive()]);
/// b.minimize([(2, v[0].positive()), (3, v[1].positive())]);
/// let inst = b.build()?;
/// let a = Assignment::new(2);
/// let out = LagrangianBound::new(inst.num_constraints())
///     .lower_bound(&Subproblem::new(&inst, &a), None);
/// assert_eq!(out.bound, 2); // optimal multiplier mu = 2 proves cost >= 2
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
#[derive(Clone, Debug)]
pub struct LagrangianBound {
    config: LagrangianConfig,
    /// Multipliers indexed by original constraint index (warm start).
    mu: Vec<f64>,
    // --- per-call scratch, reused across nodes ---
    /// Epoch of the current bound call; a variable's dense entries are
    /// valid only when its stamp equals this.
    epoch: u32,
    /// Per-variable epoch stamp for `local_of` (grown on demand).
    local_stamp: Vec<u32>,
    /// Per-variable dense local index, valid when stamped this epoch.
    local_of: Vec<u32>,
    local_vars: Vec<usize>,
    cost: Vec<f64>,
    rows: Rows,
    row_mu: Vec<f64>,
    best_mu: Vec<f64>,
    alpha: Vec<f64>,
    gradient: Vec<f64>,
    /// Per-variable epoch stamp for `assigned_alpha` (grown on demand).
    alpha_stamp: Vec<u32>,
    /// Per-variable `alpha_j` of assigned variables, valid when stamped
    /// this epoch (the sec. 4.3 filter input).
    assigned_alpha: Vec<f64>,
}

impl LagrangianBound {
    /// Creates the bound procedure for an instance with
    /// `num_constraints` constraints, multipliers initialized to zero.
    pub fn new(num_constraints: usize) -> LagrangianBound {
        LagrangianBound::with_config(num_constraints, LagrangianConfig::default())
    }

    /// Creates the bound procedure with explicit configuration.
    pub fn with_config(num_constraints: usize, config: LagrangianConfig) -> LagrangianBound {
        LagrangianBound {
            config,
            mu: vec![0.0; num_constraints],
            epoch: 0,
            local_stamp: Vec::new(),
            local_of: Vec::new(),
            local_vars: Vec::new(),
            cost: Vec::new(),
            rows: Rows::default(),
            row_mu: Vec::new(),
            best_mu: Vec::new(),
            alpha: Vec::new(),
            gradient: Vec::new(),
            alpha_stamp: Vec::new(),
            assigned_alpha: Vec::new(),
        }
    }

    /// Read access to the current multipliers (for diagnostics/ablation).
    pub fn multipliers(&self) -> &[f64] {
        &self.mu
    }

    /// Dense local index of variable `v`, allocating the next one on
    /// first sight this epoch. Hash-free: one stamp comparison per
    /// lookup, and all per-variable buffers are reused across calls.
    fn index_of(&mut self, v: usize) -> usize {
        if v >= self.local_stamp.len() {
            self.local_stamp.resize(v + 1, 0);
            self.local_of.resize(v + 1, 0);
        }
        if self.local_stamp[v] != self.epoch {
            self.local_stamp[v] = self.epoch;
            self.local_of[v] = self.local_vars.len() as u32;
            self.local_vars.push(v);
            self.cost.push(0.0);
        }
        self.local_of[v] as usize
    }

    /// `alpha_j` of an assigned variable if it was stamped this epoch,
    /// else 0 (variable not in any row of `S`).
    fn assigned_alpha_of(&self, v: usize) -> f64 {
        match self.alpha_stamp.get(v) {
            Some(&stamp) if stamp == self.epoch => self.assigned_alpha[v],
            _ => 0.0,
        }
    }
}

impl LowerBound for LagrangianBound {
    fn name(&self) -> &'static str {
        "lgr"
    }

    fn lower_bound_into(&mut self, sub: &Subproblem<'_>, upper: Option<i64>, out: &mut LbOutcome) {
        let assignment = sub.assignment();
        let instance = sub.instance();

        // --- Build the residual problem in variable space. ---
        // Local dense indices for free variables appearing anywhere
        // relevant (active constraints or objective). A new epoch
        // invalidates every per-variable stamp at once; on the (rare)
        // wrap-around the stamps are cleared so stale epochs cannot
        // collide.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.local_stamp.fill(0);
            self.alpha_stamp.fill(0);
            self.epoch = 1;
        }
        self.local_vars.clear();
        self.cost.clear();

        // Residual cost vector: cost c on literal l becomes +c on the
        // variable (positive l) or a constant c plus -c on the variable
        // (negative l).
        let mut constant = 0i64;
        if let Some(obj) = instance.objective() {
            for &(c, l) in obj.terms() {
                if assignment.lit_value(l) != Value::Unassigned {
                    continue;
                }
                let li = self.index_of(l.var().index());
                if l.is_positive() {
                    self.cost[li] += c as f64;
                } else {
                    constant += c;
                    self.cost[li] -= c as f64;
                }
            }
        }

        // Rows: coefficient lists over local vars plus adjusted rhs.
        // Dynamic rows (indices past the instance constraints) join the
        // relaxation like any other row; their multipliers live in the
        // same warm-start vector, grown on demand. A stale multiplier
        // from a previous epoch is harmless: any `mu >= 0` yields a
        // valid bound, and the ascent re-optimizes from it.
        self.rows.clear();
        for e in sub.active() {
            if e.index as usize >= self.mu.len() {
                self.mu.resize(e.index as usize + 1, 0.0);
            }
            let mut rhs = e.residual_rhs as f64;
            for t in sub.free_terms(e.index as usize) {
                let li = self.index_of(t.lit.var().index());
                if t.lit.is_positive() {
                    self.rows.terms.push((li, t.coeff as f64));
                } else {
                    // a * ~x = a - a*x : constant a moves into the rhs.
                    self.rows.terms.push((li, -(t.coeff as f64)));
                    rhs -= t.coeff as f64;
                }
            }
            self.rows.orig.push(e.index as usize);
            self.rows.rhs.push(rhs);
            self.rows.start.push(self.rows.terms.len());
        }
        let nv = self.cost.len().max(self.local_vars.len());
        self.cost.resize(nv, 0.0);
        let num_rows = self.rows.len();

        let base = sub.path_cost() + constant;

        // --- Projected subgradient ascent on L(mu). ---
        self.row_mu.clear();
        self.row_mu.extend(self.rows.orig.iter().map(|&orig| self.mu[orig]));
        self.best_mu.clear();
        self.best_mu.extend_from_slice(&self.row_mu);
        let mut best_l = f64::NEG_INFINITY;
        let mut lambda = self.config.initial_lambda;
        let mut stale = 0usize;
        self.alpha.clear();
        self.alpha.resize(nv, 0.0);
        self.gradient.clear();
        self.gradient.resize(num_rows, 0.0);
        let target_gap = upper.map(|u| (u - base) as f64);

        for _ in 0..self.config.max_iterations.max(1) {
            // alpha_j = c_j - sum_i mu_i a_ij ; L = mu.b + sum min(0, alpha).
            self.alpha.copy_from_slice(&self.cost);
            let mut l_val = 0.0;
            for r in 0..num_rows {
                l_val += self.row_mu[r] * self.rows.rhs[r];
                for &(j, a) in self.rows.row_terms(r) {
                    self.alpha[j] -= self.row_mu[r] * a;
                }
            }
            for &a in &self.alpha {
                if a < 0.0 {
                    l_val += a;
                }
            }
            if l_val > best_l + 1e-12 {
                best_l = l_val;
                self.best_mu.copy_from_slice(&self.row_mu);
                stale = 0;
            } else {
                stale += 1;
                if stale >= self.config.halving_patience {
                    lambda *= 0.5;
                    stale = 0;
                    if lambda < self.config.min_lambda {
                        break;
                    }
                }
            }
            // Early exit once the bound prunes.
            if let Some(gap) = target_gap {
                if best_l >= gap {
                    break;
                }
            }
            // Subgradient g = b - A x(mu) with x_j = [alpha_j < 0].
            let mut norm = 0.0;
            for r in 0..num_rows {
                let mut act = 0.0;
                for &(j, a) in self.rows.row_terms(r) {
                    if self.alpha[j] < 0.0 {
                        act += a;
                    }
                }
                self.gradient[r] = self.rows.rhs[r] - act;
                norm += self.gradient[r] * self.gradient[r];
            }
            if norm < 1e-12 {
                break; // relaxed solution feasible: L is locally maximal
            }
            let target = match target_gap {
                Some(gap) if gap > best_l => gap,
                _ => best_l.abs().max(1.0) * 0.05 + best_l + 1.0,
            };
            let step = lambda * (target - l_val).max(1e-3) / norm;
            for r in 0..num_rows {
                self.row_mu[r] = (self.row_mu[r] + step * self.gradient[r]).max(0.0);
            }
        }

        // Persist the best multipliers for warm starting.
        for r in 0..num_rows {
            self.mu[self.rows.orig[r]] = self.best_mu[r];
        }

        // Note: L may legitimately be negative (negative variable-space
        // costs arise from objective terms on negative literals), so the
        // ceiling must not be clamped to zero. The addition saturates: a
        // badly violated (dynamic) row can drive the multipliers — and
        // with them L — arbitrarily high before the engine ever sees the
        // conflict.
        let bound = if best_l.is_finite() {
            base.saturating_add((best_l - 1e-9).ceil() as i64)
        } else {
            base
        };

        // --- Explanation: S = { rows with mu_i > 0 } (sec. 4.3). ---
        // Built directly into the caller's reusable buffer.
        out.explanation.clear();
        let explanation = &mut out.explanation;
        // alpha for *assigned* variables, needed by the filter: computed
        // over the original constraints in S in variable space, into the
        // epoch-stamped dense scratch (no hashing, no allocation after
        // warm-up).
        if self.config.alpha_filter {
            for r in 0..num_rows {
                if self.best_mu[r] <= self.config.mu_tolerance {
                    continue;
                }
                let orig = self.rows.orig[r];
                for t in sub.row_terms(orig).terms() {
                    if assignment.lit_value(t.lit) == Value::Unassigned {
                        continue;
                    }
                    let v = t.lit.var().index();
                    let coeff =
                        if t.lit.is_positive() { t.coeff as f64 } else { -(t.coeff as f64) };
                    if v >= self.alpha_stamp.len() {
                        self.alpha_stamp.resize(v + 1, 0);
                        self.assigned_alpha.resize(v + 1, 0.0);
                    }
                    if self.alpha_stamp[v] != self.epoch {
                        self.alpha_stamp[v] = self.epoch;
                        // Start from the variable-space objective cost.
                        self.assigned_alpha[v] = instance.objective().map_or(0.0, |o| {
                            o.term_of_var(t.lit.var()).map_or(0.0, |(c, l)| {
                                if l.is_positive() {
                                    c as f64
                                } else {
                                    -(c as f64)
                                }
                            })
                        });
                    }
                    self.assigned_alpha[v] -= self.best_mu[r] * coeff;
                }
            }
        }
        for r in 0..num_rows {
            if self.best_mu[r] <= self.config.mu_tolerance {
                continue;
            }
            for l in sub.false_literals(self.rows.orig[r]) {
                if self.config.alpha_filter {
                    let v = l.var();
                    let a = self.assigned_alpha_of(v.index());
                    let x_is_one = assignment.value(v) == Value::True;
                    // sec 4.3: x_j = 0 with alpha_j > 0 (raising it would
                    // raise L) or x_j = 1 with alpha_j < 0: not responsible.
                    if (!x_is_one && a > 1e-9) || (x_is_one && a < -1e-9) {
                        continue;
                    }
                }
                explanation.push(l);
            }
        }
        explanation.sort_unstable();
        explanation.dedup();
        out.bound = bound;
        out.infeasible = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::{brute_force, Assignment, InstanceBuilder, Var};

    #[test]
    fn single_clause_bound_reaches_cheapest_literal() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.minimize([(2, v[0].positive()), (3, v[1].positive())]);
        let inst = b.build().unwrap();
        let a = Assignment::new(2);
        let out = LagrangianBound::new(inst.num_constraints())
            .lower_bound(&Subproblem::new(&inst, &a), None);
        assert_eq!(out.bound, 2);
        assert!(!out.infeasible);
    }

    #[test]
    fn cardinality_constraint_bound() {
        // at least 2 of 3, costs 1,2,3: optimum 3, LGR should reach >= 2.
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_at_least(2, v.iter().map(|x| x.positive()));
        b.minimize(v.iter().enumerate().map(|(i, x)| ((i + 1) as i64, x.positive())));
        let inst = b.build().unwrap();
        let a = Assignment::new(3);
        let out = LagrangianBound::new(inst.num_constraints())
            .lower_bound(&Subproblem::new(&inst, &a), None);
        assert!(out.bound >= 2, "bound {} too weak", out.bound);
        assert!(out.bound <= 3, "bound {} exceeds optimum", out.bound);
    }

    #[test]
    fn bound_never_exceeds_optimum_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x161);
        for round in 0..60 {
            let n = rng.gen_range(3..9);
            let mut b = InstanceBuilder::new();
            let vars = b.new_vars(n);
            for _ in 0..rng.gen_range(2..8) {
                let k = rng.gen_range(1..=3.min(n));
                let mut idxs: Vec<usize> = (0..n).collect();
                for i in 0..k {
                    let j = rng.gen_range(i..n);
                    idxs.swap(i, j);
                }
                let terms: Vec<(i64, pbo_core::Lit)> = idxs[..k]
                    .iter()
                    .map(|&i| (rng.gen_range(1..4), vars[i].lit(rng.gen_bool(0.7))))
                    .collect();
                let maxw: i64 = terms.iter().map(|t| t.0).sum();
                b.add_linear(terms, pbo_core::RelOp::Ge, rng.gen_range(1..=maxw));
            }
            b.minimize(vars.iter().map(|v| (rng.gen_range(0..6), v.positive())));
            let inst = b.build().unwrap();
            let Some(opt) = brute_force(&inst).cost() else { continue };
            let a = Assignment::new(n);
            let out = LagrangianBound::new(inst.num_constraints())
                .lower_bound(&Subproblem::new(&inst, &a), None);
            assert!(!out.infeasible, "round {round}");
            assert!(
                out.bound <= opt,
                "round {round}: LGR bound {} exceeds optimum {opt}",
                out.bound
            );
        }
    }

    #[test]
    fn bound_valid_under_partial_assignment_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x162);
        for round in 0..40 {
            let n = rng.gen_range(4..9);
            let mut b = InstanceBuilder::new();
            let vars = b.new_vars(n);
            for _ in 0..rng.gen_range(2..6) {
                let k = rng.gen_range(2..=3.min(n));
                let mut idxs: Vec<usize> = (0..n).collect();
                for i in 0..k {
                    let j = rng.gen_range(i..n);
                    idxs.swap(i, j);
                }
                b.add_at_least(1, idxs[..k].iter().map(|&i| vars[i].lit(rng.gen_bool(0.8))));
            }
            b.minimize(vars.iter().map(|v| (rng.gen_range(0..5), v.positive())));
            let inst = b.build().unwrap();
            // Partial assignment on the first variable.
            let mut a = Assignment::new(n);
            a.assign(Var::new(0), rng.gen_bool(0.5));
            // Best completion cost by enumeration.
            let mut best: Option<i64> = None;
            for mask in 0u64..(1 << (n - 1)) {
                let mut vals = vec![false; n];
                vals[0] = a.value(Var::new(0)) == pbo_core::Value::True;
                for (i, v) in vals.iter_mut().enumerate().skip(1) {
                    *v = (mask >> (i - 1)) & 1 == 1;
                }
                if inst.is_feasible(&vals) {
                    let c = inst.cost_of(&vals);
                    best = Some(best.map_or(c, |b: i64| b.min(c)));
                }
            }
            let Some(opt) = best else { continue };
            let out = LagrangianBound::new(inst.num_constraints())
                .lower_bound(&Subproblem::new(&inst, &a), None);
            assert!(
                out.bound <= opt,
                "round {round}: LGR bound {} exceeds completion optimum {opt}",
                out.bound
            );
        }
    }

    #[test]
    fn warm_start_reuses_multipliers() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.minimize([(2, v[0].positive()), (3, v[1].positive())]);
        let inst = b.build().unwrap();
        let a = Assignment::new(2);
        let mut lgr = LagrangianBound::new(inst.num_constraints());
        let _ = lgr.lower_bound(&Subproblem::new(&inst, &a), None);
        assert!(lgr.multipliers()[0] > 0.0, "multiplier should be persisted");
        // Second call starts from the good multiplier and must not regress.
        let out = lgr.lower_bound(&Subproblem::new(&inst, &a), None);
        assert_eq!(out.bound, 2);
    }

    #[test]
    fn explanation_mentions_false_literals_of_active_rows() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_clause([v[0].positive(), v[1].positive(), v[2].positive()]);
        b.minimize([(5, v[1].positive()), (5, v[2].positive())]);
        let inst = b.build().unwrap();
        let mut a = Assignment::new(3);
        a.assign(Var::new(0), false);
        let out = LagrangianBound::new(inst.num_constraints())
            .lower_bound(&Subproblem::new(&inst, &a), None);
        assert!(out.bound >= 5);
        assert!(out.explanation.contains(&v[0].positive()), "{:?}", out.explanation);
    }

    #[test]
    fn pure_satisfaction_gives_zero_bound() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_clause([v[0].positive(), v[1].positive()]);
        let inst = b.build().unwrap();
        let a = Assignment::new(2);
        let out = LagrangianBound::new(inst.num_constraints())
            .lower_bound(&Subproblem::new(&inst, &a), None);
        assert_eq!(out.bound, 0);
    }
}
