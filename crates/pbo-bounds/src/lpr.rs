//! Lower bounding by linear-programming relaxation (sec. 3.1 of the
//! paper) with zero-slack explanations (sec. 4.2).
//!
//! The relaxation `min cx, Ax >= b, 0 <= x <= 1` is built once per
//! instance in variable space; at each search node the current variable
//! fixings become bound changes and the dual simplex re-optimizes from
//! the previous basis. `ceil(z_lpr)` is the bound. The explanation
//! `omega_pl` is eq. 9: the false literals of the constraints whose slack
//! is zero in the LP solution (union the constraints with nonzero duals,
//! which complementary slackness places among the tight ones — the union
//! guards against tolerance mismatches). If the relaxation is infeasible
//! the Farkas rows play the role of `S`.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

use pbo_core::{Instance, Lit, PbConstraint};
use pbo_lp::{DualSimplex, LpProblem, LpStatus};

use crate::dynrows::DynamicRows;
use crate::subproblem::Subproblem;
use crate::{LbOutcome, LowerBound};

/// LP-relaxation lower bound with a warm-started dual simplex.
///
/// # Examples
///
/// ```
/// use pbo_core::{Assignment, InstanceBuilder};
/// use pbo_bounds::{LowerBound, LprBound, Subproblem};
///
/// let mut b = InstanceBuilder::new();
/// let v = b.new_vars(3);
/// b.add_at_least(2, v.iter().map(|x| x.positive()));
/// b.minimize(v.iter().map(|x| (3, x.positive())));
/// let inst = b.build()?;
/// let a = Assignment::new(3);
/// let mut lpr = LprBound::new(&inst);
/// // LP optimum is 6 (two variables at 1... or any mass 2): ceil(6) = 6.
/// assert_eq!(lpr.lower_bound(&Subproblem::new(&inst, &a), None).bound, 6);
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
#[derive(Debug)]
pub struct LprBound {
    simplex: DualSimplex,
    cached: Vec<Option<bool>>,
    /// Constant folded out of the variable-space objective (objective
    /// offset plus the constants of negative-literal cost terms).
    const_shift: f64,
    /// The fractional solution of the most recent optimal solve, for
    /// LP-guided branching (sec. 5).
    last_fractional: Vec<f64>,
    /// Trail mirror for the incremental bound-sync protocol
    /// ([`LprBound::apply`] / [`LprBound::unwind_to`]): the literals
    /// whose fixings are currently reflected in the simplex bounds.
    mirror: Vec<Lit>,
    /// Set once the trail protocol has been used: [`lower_bound`]
    /// (LowerBound::lower_bound) then trusts the mirror instead of
    /// diffing the whole assignment (O(changed vars) instead of O(vars)
    /// per node).
    trail_mode: bool,
    /// Cancellation armed on the simplex; kept here so re-roots (which
    /// rebuild the simplex) re-arm it (see [`LprBound::set_cancel`]).
    cancel: (Option<Instant>, Option<Arc<AtomicBool>>),
    /// The dynamic rows currently installed in the simplex, in row order
    /// after the instance's static rows. [`LprBound::install_rows`]
    /// diffs the incoming registry against this to take the incremental
    /// path (rhs updates + basis-extending appends) instead of a full
    /// rebuild.
    installed: Vec<PbConstraint>,
    /// Number of static instance rows (the dynamic region starts here).
    num_static: usize,
    /// Re-roots served incrementally vs. by full rebuild (diagnostics
    /// and differential tests).
    install_appends: u64,
    install_rebuilds: u64,
}

impl LprBound {
    /// Builds the relaxation of `instance`.
    pub fn new(instance: &Instance) -> LprBound {
        let (problem, const_shift) = Self::build_problem(instance, &[]);
        let n = instance.num_vars();
        LprBound {
            simplex: DualSimplex::new(&problem),
            cached: vec![None; n],
            const_shift,
            last_fractional: vec![0.0; n],
            mirror: Vec::with_capacity(n),
            trail_mode: false,
            cancel: (None, None),
            installed: Vec::new(),
            num_static: instance.constraints().len(),
            install_appends: 0,
            install_rebuilds: 0,
        }
    }

    /// Arms cooperative cancellation on the underlying simplex: solves
    /// interrupted by the deadline or the stop latch return the sound
    /// no-information fallback bound (like an iteration limit), so a
    /// budget deadline landing *inside* an LP solve is honored within a
    /// bounded overshoot instead of only between search nodes. Survives
    /// [`LprBound::install_rows`] rebuilds.
    pub fn set_cancel(&mut self, deadline: Option<Instant>, stop: Option<Arc<AtomicBool>>) {
        self.simplex.set_cancel(deadline, stop.clone());
        self.cancel = (deadline, stop);
    }

    /// The LP problem of `instance` plus `extra` rows (appended after the
    /// instance constraints, so LP row indices line up with
    /// [`Subproblem`] row indices, dynamic rows included).
    fn build_problem(instance: &Instance, extra: &[&PbConstraint]) -> (LpProblem, f64) {
        let n = instance.num_vars();
        let mut p = LpProblem::new(n);
        let mut const_shift = 0.0;
        if let Some(obj) = instance.objective() {
            const_shift += obj.offset() as f64;
            let mut costs = vec![0.0f64; n];
            for &(c, l) in obj.terms() {
                if l.is_positive() {
                    costs[l.var().index()] += c as f64;
                } else {
                    // c * ~x = c - c*x
                    const_shift += c as f64;
                    costs[l.var().index()] -= c as f64;
                }
            }
            for (j, &c) in costs.iter().enumerate() {
                if c != 0.0 {
                    p.set_cost(j, c);
                }
            }
        }
        for c in instance.constraints().iter().chain(extra.iter().copied()) {
            let (terms, rhs) = Self::lp_row(c);
            p.add_row_ge(&terms, rhs);
        }
        (p, const_shift)
    }

    /// The LP form of one normalized PB row: negative literals flip the
    /// coefficient sign and move a constant into the rhs
    /// (`a * ~x = a - a*x`).
    fn lp_row(c: &PbConstraint) -> (Vec<(usize, f64)>, f64) {
        let mut terms = Vec::with_capacity(c.len());
        let mut rhs = c.rhs() as f64;
        for t in c.terms() {
            if t.lit.is_positive() {
                terms.push((t.lit.var().index(), t.coeff as f64));
            } else {
                terms.push((t.lit.var().index(), -(t.coeff as f64)));
                rhs -= t.coeff as f64;
            }
        }
        (terms, rhs)
    }

    /// The bare LP relaxation of `instance` (static rows only) — exposed
    /// for the `lp_pricing` microbench, which drives the simplex on the
    /// exact problems the bound sees.
    pub fn relaxation_problem(instance: &Instance) -> LpProblem {
        Self::build_problem(instance, &[]).0
    }

    /// Installs the registry's dynamic rows after the instance rows
    /// (matching the row indices of a [`Subproblem`] view carrying the
    /// same rows). Called once per incumbent re-root — the per-node
    /// warm-started solves are untouched.
    ///
    /// When the new registry extends the installed one — every already
    /// installed row either reappears verbatim or keeps its support with
    /// a new right-hand side (the objective cut tightens on each
    /// incumbent), plus an appended suffix — the warm basis is *kept*:
    /// rhs changes shift the maintained primal values in `O(m)` and new
    /// rows extend the basis through
    /// [`DualSimplex::append_row_ge`]. Only a structurally different
    /// registry (rows removed or support changed) pays for a full
    /// rebuild.
    pub fn install_rows(&mut self, instance: &Instance, rows: &DynamicRows) {
        let new_rows = rows.rows();
        if new_rows.is_empty() && self.installed.is_empty() {
            return;
        }
        let extends = new_rows.len() >= self.installed.len()
            && new_rows
                .iter()
                .zip(&self.installed)
                .all(|(r, old)| r.constraint.terms() == old.terms());
        if extends {
            for (k, r) in new_rows.iter().take(self.installed.len()).enumerate() {
                let old = &mut self.installed[k];
                if r.constraint != *old {
                    let (_, rhs) = Self::lp_row(&r.constraint);
                    self.simplex.update_row_rhs(self.num_static + k, rhs);
                    *old = r.constraint.clone();
                }
            }
            for r in &new_rows[self.installed.len()..] {
                let (terms, rhs) = Self::lp_row(&r.constraint);
                self.simplex.append_row_ge(&terms, rhs);
                self.installed.push(r.constraint.clone());
            }
            self.install_appends += 1;
            return;
        }
        let extra: Vec<&PbConstraint> = new_rows.iter().map(|r| &r.constraint).collect();
        let (problem, const_shift) = Self::build_problem(instance, &extra);
        let iterations = self.simplex.total_iterations;
        let pricing = self.simplex.pricing();
        self.simplex = DualSimplex::new(&problem);
        self.simplex.set_pricing(pricing);
        self.simplex.total_iterations = iterations;
        self.simplex.set_cancel(self.cancel.0, self.cancel.1.clone());
        self.const_shift = const_shift;
        for (v, &fixed) in self.cached.iter().enumerate() {
            match fixed {
                Some(true) => self.simplex.set_var_bounds(v, 1.0, 1.0),
                Some(false) => self.simplex.set_var_bounds(v, 0.0, 0.0),
                None => {}
            }
        }
        self.installed = new_rows.iter().map(|r| r.constraint.clone()).collect();
        self.install_rebuilds += 1;
    }

    /// How many [`LprBound::install_rows`] calls took the incremental
    /// (rhs-update + append) path vs. a full rebuild.
    pub fn install_counts(&self) -> (u64, u64) {
        (self.install_appends, self.install_rebuilds)
    }

    /// Number of trail literals currently mirrored into the simplex
    /// bounds — the mark to hand to the engine's `sync_trail`.
    #[inline]
    pub fn synced_len(&self) -> usize {
        self.mirror.len()
    }

    /// Applies one trail literal (the literal became **true**): fixes the
    /// variable's LP bounds accordingly. Part of the incremental
    /// bound-sync protocol: once used, [`lower_bound`](LowerBound) trusts
    /// the mirror and skips the O(vars) assignment diff.
    pub fn apply(&mut self, lit: Lit) {
        self.trail_mode = true;
        let v = lit.var().index();
        let fixed = if lit.is_positive() { 1.0 } else { 0.0 };
        self.simplex.set_var_bounds(v, fixed, fixed);
        self.cached[v] = Some(lit.is_positive());
        self.mirror.push(lit);
    }

    /// Unwinds mirrored literals until exactly `len` remain, relaxing
    /// their LP bounds back to `[0, 1]` (mirror of [`LprBound::apply`]).
    ///
    /// # Panics
    ///
    /// Panics if more than [`LprBound::synced_len`] literals would be
    /// unwound.
    pub fn unwind_to(&mut self, len: usize) {
        assert!(len <= self.mirror.len(), "cannot unwind below an empty mirror");
        self.trail_mode = true;
        while self.mirror.len() > len {
            let lit = self.mirror.pop().expect("checked above");
            let v = lit.var().index();
            self.simplex.set_var_bounds(v, 0.0, 1.0);
            self.cached[v] = None;
        }
    }

    /// The primal values of the last optimal LP solve, indexed by
    /// variable — the input to LP-guided branching (sec. 5: branch on the
    /// variable closest to 0.5).
    pub fn last_solution(&self) -> &[f64] {
        &self.last_fractional
    }

    /// Total simplex iterations spent so far (for the ablation tables).
    pub fn simplex_iterations(&self) -> u64 {
        self.simplex.total_iterations
    }

    /// Full-assignment diff fallback for callers that do not drive the
    /// trail protocol (standalone use, the rebuild oracle): O(vars).
    fn sync_bounds(&mut self, sub: &Subproblem<'_>) {
        let assignment = sub.assignment();
        for v in 0..self.cached.len() {
            let now = assignment.value(pbo_core::Var::new(v)).to_bool();
            if now != self.cached[v] {
                match now {
                    Some(true) => self.simplex.set_var_bounds(v, 1.0, 1.0),
                    Some(false) => self.simplex.set_var_bounds(v, 0.0, 0.0),
                    None => self.simplex.set_var_bounds(v, 0.0, 1.0),
                }
                self.cached[v] = now;
            }
        }
    }

    fn explanation_from_rows(sub: &Subproblem<'_>, rows: &[usize]) -> Vec<Lit> {
        let mut out: Vec<Lit> = Vec::new();
        for &i in rows {
            out.extend(sub.false_literals(i));
        }
        out.sort();
        out.dedup();
        out
    }
}

impl LowerBound for LprBound {
    fn name(&self) -> &'static str {
        "lpr"
    }

    fn lower_bound(&mut self, sub: &Subproblem<'_>, upper: Option<i64>) -> LbOutcome {
        if self.trail_mode {
            // The caller already synced the bounds through the trail
            // protocol; the mirror must agree with the assignment.
            debug_assert_eq!(
                self.mirror.len(),
                sub.assignment().num_assigned(),
                "LP trail mirror drifted from the assignment"
            );
        } else {
            self.sync_bounds(sub);
        }
        let sol = self.simplex.solve();
        match sol.status {
            LpStatus::Optimal => {
                let z = sol.objective + self.const_shift;
                let bound = (z - 1e-6).ceil() as i64;
                // Pre-incumbent calls (`upper == None`) exist only to
                // catch Farkas-infeasible subtrees; they must not steer
                // LP-guided branching, or the descent to the first
                // solution changes character. Branching guidance starts
                // with the first incumbent, as in the paper.
                if upper.is_some() {
                    self.last_fractional.copy_from_slice(&sol.x);
                }
                // S = tight rows, union rows with nonzero dual (eq. 9).
                let mut s: Vec<usize> = sol.tight_rows.clone();
                for (i, &y) in sol.duals.iter().enumerate() {
                    if y.abs() > 1e-7 {
                        s.push(i);
                    }
                }
                s.sort_unstable();
                s.dedup();
                LbOutcome::bound(bound, Self::explanation_from_rows(sub, &s))
            }
            LpStatus::Infeasible => {
                LbOutcome::infeasible(Self::explanation_from_rows(sub, &sol.farkas_rows))
            }
            LpStatus::IterationLimit | LpStatus::Cancelled => {
                // Sound fallback: no pruning information. A cancelled
                // solve additionally means the search is tearing down;
                // the caller notices the token at its own poll sites.
                LbOutcome::bound(sub.path_cost(), Vec::new())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::{brute_force, Assignment, InstanceBuilder, Var};

    #[test]
    fn exact_on_integral_relaxation() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_clause([v[0].positive()]);
        b.minimize([(4, v[0].positive()), (1, v[1].positive())]);
        let inst = b.build().unwrap();
        let a = Assignment::new(2);
        let out = LprBound::new(&inst).lower_bound(&Subproblem::new(&inst, &a), None);
        assert_eq!(out.bound, 4);
    }

    #[test]
    fn ceiling_tightens_fractional_relaxation() {
        // at least 1 of {x1,x2} and 1 of {x2,x3} and 1 of {x1,x3}: LP can
        // take all at 0.5 -> z = 1.5; the 0-1 optimum is 2.
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_clause([v[1].positive(), v[2].positive()]);
        b.add_clause([v[0].positive(), v[2].positive()]);
        b.minimize(v.iter().map(|x| (1, x.positive())));
        let inst = b.build().unwrap();
        let a = Assignment::new(3);
        let out = LprBound::new(&inst).lower_bound(&Subproblem::new(&inst, &a), None);
        assert_eq!(out.bound, 2, "ceil(1.5) = 2");
        assert_eq!(brute_force(&inst).cost(), Some(2));
    }

    #[test]
    fn infeasible_relaxation_under_fixings() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_at_least(2, [v[0].positive(), v[1].positive()]);
        b.minimize([(1, v[0].positive())]);
        let inst = b.build().unwrap();
        let mut a = Assignment::new(2);
        a.assign(Var::new(0), false);
        let mut lpr = LprBound::new(&inst);
        let out = lpr.lower_bound(&Subproblem::new(&inst, &a), None);
        assert!(out.infeasible);
        assert_eq!(out.explanation, vec![v[0].positive()]);
    }

    #[test]
    fn bound_never_exceeds_optimum_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x19);
        for round in 0..50 {
            let n = rng.gen_range(3..9);
            let mut b = InstanceBuilder::new();
            let vars = b.new_vars(n);
            for _ in 0..rng.gen_range(2..8) {
                let k = rng.gen_range(1..=3.min(n));
                let mut idxs: Vec<usize> = (0..n).collect();
                for i in 0..k {
                    let j = rng.gen_range(i..n);
                    idxs.swap(i, j);
                }
                let terms: Vec<(i64, pbo_core::Lit)> = idxs[..k]
                    .iter()
                    .map(|&i| (rng.gen_range(1..4), vars[i].lit(rng.gen_bool(0.7))))
                    .collect();
                let maxw: i64 = terms.iter().map(|t| t.0).sum();
                b.add_linear(terms, pbo_core::RelOp::Ge, rng.gen_range(1..=maxw));
            }
            b.minimize(vars.iter().map(|v| (rng.gen_range(0..6), v.positive())));
            let inst = b.build().unwrap();
            let brute = brute_force(&inst);
            let a = Assignment::new(n);
            let mut lpr = LprBound::new(&inst);
            let out = lpr.lower_bound(&Subproblem::new(&inst, &a), None);
            match brute.cost() {
                Some(opt) => {
                    assert!(!out.infeasible, "round {round}: spurious infeasibility");
                    assert!(
                        out.bound <= opt,
                        "round {round}: LPR bound {} exceeds optimum {opt}",
                        out.bound
                    );
                }
                None => {
                    // The relaxation may still be feasible; no assertion on
                    // the bound, but it must not crash.
                }
            }
        }
    }

    #[test]
    fn warm_start_across_fixings_matches_fresh() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(4);
        b.add_at_least(2, v.iter().map(|x| x.positive()));
        b.add_clause([v[0].positive(), v[3].positive()]);
        b.minimize(v.iter().enumerate().map(|(i, x)| ((i + 1) as i64, x.positive())));
        let inst = b.build().unwrap();
        let mut warm = LprBound::new(&inst);

        let a0 = Assignment::new(4);
        let b0 = warm.lower_bound(&Subproblem::new(&inst, &a0), None).bound;

        let mut a1 = Assignment::new(4);
        a1.assign(Var::new(0), false);
        let warm_b1 = warm.lower_bound(&Subproblem::new(&inst, &a1), None).bound;
        let fresh_b1 = LprBound::new(&inst).lower_bound(&Subproblem::new(&inst, &a1), None).bound;
        assert_eq!(warm_b1, fresh_b1);
        assert!(warm_b1 >= b0, "fixing can only tighten the bound");

        // And back.
        let back = warm.lower_bound(&Subproblem::new(&inst, &a0), None).bound;
        assert_eq!(back, b0);
    }

    #[test]
    fn fractional_solution_exposed_for_branching() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(2);
        b.add_linear(vec![(2, v[0].positive()), (2, v[1].positive())], pbo_core::RelOp::Ge, 3);
        b.minimize([(1, v[0].positive()), (1, v[1].positive())]);
        let inst = b.build().unwrap();
        let a = Assignment::new(2);
        let mut lpr = LprBound::new(&inst);
        // Pre-incumbent (upper = None) solves must NOT steer branching.
        let _ = lpr.lower_bound(&Subproblem::new(&inst, &a), None);
        assert!(lpr.last_solution().iter().all(|&x| x == 0.0));
        // With an incumbent the fractional solution is exposed.
        let _ = lpr.lower_bound(&Subproblem::new(&inst, &a), Some(100));
        let frac: Vec<f64> = lpr.last_solution().to_vec();
        // Total mass 1.5 split over two vars: at least one fractional.
        assert!(frac.iter().any(|&x| x > 0.01 && x < 0.99), "{frac:?}");
    }

    #[test]
    fn trail_protocol_matches_full_diff() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(4);
        b.add_at_least(2, v.iter().map(|x| x.positive()));
        b.add_clause([v[0].positive(), v[3].positive()]);
        b.minimize(v.iter().enumerate().map(|(i, x)| ((i + 1) as i64, x.positive())));
        let inst = b.build().unwrap();

        let mut traced = LprBound::new(&inst);
        let mut a = Assignment::new(4);
        a.assign(Var::new(0), false);
        a.assign(Var::new(2), true);
        traced.apply(v[0].negative());
        traced.apply(v[2].positive());
        let via_trail = traced.lower_bound(&Subproblem::new(&inst, &a), None);
        let via_diff = LprBound::new(&inst).lower_bound(&Subproblem::new(&inst, &a), None);
        assert_eq!(via_trail, via_diff);

        // Unwinding relaxes the bounds back: root solve must match a
        // fresh root solve.
        a.unassign(Var::new(0));
        a.unassign(Var::new(2));
        traced.unwind_to(0);
        assert_eq!(traced.synced_len(), 0);
        let back = traced.lower_bound(&Subproblem::new(&inst, &a), None);
        let fresh = LprBound::new(&inst).lower_bound(&Subproblem::new(&inst, &a), None);
        assert_eq!(back, fresh);
    }

    #[test]
    fn install_rows_incremental_matches_rebuild() {
        use crate::dynrows::{DynRowOrigin, DynamicRows};

        // Distinct costs keep the LP optima non-degenerate, so the
        // incremental and rebuild paths land on identical bases and the
        // outcomes (bound + explanation) compare bit-for-bit.
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(6);
        b.add_at_least(2, [v[0].positive(), v[1].positive(), v[2].positive(), v[3].positive()]);
        b.add_clause([v[2].positive(), v[4].positive(), v[5].positive()]);
        b.add_at_least(2, [v[1].positive(), v[3].positive(), v[5].positive()]);
        b.minimize(v.iter().enumerate().map(|(i, x)| ((i + 1) as i64, x.positive())));
        let inst = b.build().unwrap();

        let card = |rhs| {
            PbConstraint::try_new(
                vec![(1, v[1].positive()), (1, v[2].positive()), (1, v[4].positive())],
                rhs,
            )
            .unwrap()
        };
        let clause =
            PbConstraint::try_new(vec![(1, v[0].positive()), (1, v[3].positive())], 1).unwrap();
        let late =
            PbConstraint::try_new(vec![(1, v[4].positive()), (1, v[5].positive())], 1).unwrap();

        let mut rows = DynamicRows::for_instance(&inst);
        rows.begin_epoch();
        rows.push(card(1), DynRowOrigin::CardinalityCut);
        rows.push(clause.clone(), DynRowOrigin::PromotedClause);

        // Warm side: installs land on the incremental path throughout.
        let mut warm = LprBound::new(&inst);
        warm.install_rows(&inst, &rows);
        assert_eq!(warm.install_counts(), (1, 0), "first install extends the empty region");

        // Oracle side: poison the installed region so every later
        // install pays for the full rebuild.
        let force_rebuild = |oracle: &mut LprBound| {
            let mut decoy = DynamicRows::for_instance(&inst);
            decoy.begin_epoch();
            decoy.push(late.clone(), DynRowOrigin::PromotedClause);
            oracle.install_rows(&inst, &decoy);
        };
        let mut oracle = LprBound::new(&inst);
        force_rebuild(&mut oracle);
        oracle.install_rows(&inst, &rows);
        assert_eq!(oracle.install_counts(), (1, 1), "support mismatch must rebuild");

        let check = |warm: &mut LprBound, oracle: &mut LprBound, rows: &DynamicRows| {
            let mut a = Assignment::new(6);
            let sub = Subproblem::with_rows(&inst, &a, rows);
            assert_eq!(warm.lower_bound(&sub, Some(50)), oracle.lower_bound(&sub, Some(50)));
            a.assign(Var::new(1), false);
            a.assign(Var::new(4), true);
            let sub = Subproblem::with_rows(&inst, &a, rows);
            assert_eq!(warm.lower_bound(&sub, Some(50)), oracle.lower_bound(&sub, Some(50)));
        };
        check(&mut warm, &mut oracle, &rows);

        // Re-root: the cardinality cut tightens (same support, new rhs),
        // the promoted clause survives, and a new clause is appended —
        // the exact shape an improving incumbent produces.
        rows.begin_epoch();
        rows.push(card(2), DynRowOrigin::CardinalityCut);
        rows.push(clause.clone(), DynRowOrigin::PromotedClause);
        rows.push(late.clone(), DynRowOrigin::PromotedClause);
        warm.install_rows(&inst, &rows);
        assert_eq!(warm.install_counts(), (2, 0), "rhs change + append stays incremental");
        force_rebuild(&mut oracle);
        oracle.install_rows(&inst, &rows);
        assert_eq!(oracle.install_counts().1, 3, "oracle keeps rebuilding");
        check(&mut warm, &mut oracle, &rows);

        // Shrinking the registry (taint path) falls back to a rebuild.
        let mut shrunk = DynamicRows::for_instance(&inst);
        shrunk.begin_epoch();
        shrunk.push(card(2), DynRowOrigin::CardinalityCut);
        warm.install_rows(&inst, &shrunk);
        assert_eq!(warm.install_counts(), (2, 1), "row removal must rebuild");
        force_rebuild(&mut oracle);
        oracle.install_rows(&inst, &shrunk);
        check(&mut warm, &mut oracle, &shrunk);
    }

    #[test]
    fn negative_literal_costs_shift_constant() {
        // min 5*~x1 : LP must report 5 when x1 = 0 and 0 when x1 = 1.
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(1);
        b.add_clause([v[0].positive(), v[0].negative()]); // tautology dropped
        b.minimize([(5, v[0].negative())]);
        let inst = b.build().unwrap();
        let mut lpr = LprBound::new(&inst);
        let mut a = Assignment::new(1);
        a.assign(Var::new(0), false);
        assert_eq!(lpr.lower_bound(&Subproblem::new(&inst, &a), None).bound, 5);
        let mut a = Assignment::new(1);
        a.assign(Var::new(0), true);
        assert_eq!(lpr.lower_bound(&Subproblem::new(&inst, &a), None).bound, 0);
    }
}
