//! The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...).

/// Returns the `i`-th element (1-based) of the Luby sequence.
///
/// Restart intervals are usually `base * luby(i)` conflicts; the sequence
/// is the universally-optimal strategy of Luby, Sinclair and Zuckerman.
///
/// # Examples
///
/// ```
/// use pbo_engine::luby;
/// let prefix: Vec<u64> = (1..=9).map(luby).collect();
/// assert_eq!(prefix, [1, 1, 2, 1, 1, 2, 4, 1, 1]);
/// ```
pub fn luby(i: u64) -> u64 {
    assert!(i >= 1, "luby sequence is 1-based");
    // Find the subsequence containing index i: the sequence is composed of
    // blocks ending at indices 2^k - 1 where the last element is 2^(k-1).
    let mut k = 1u32;
    while (1u64 << k) - 1 < i {
        k += 1;
    }
    let mut i = i;
    while (1u64 << k) - 1 != i {
        i -= (1u64 << (k - 1)) - 1;
        k = 1;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
    }
    1u64 << (k - 1)
}

/// Iterator over `base * luby(i)` restart budgets.
#[derive(Clone, Debug)]
pub struct LubyRestarts {
    base: u64,
    index: u64,
}

impl LubyRestarts {
    /// Creates a restart schedule with the given conflict base interval.
    pub fn new(base: u64) -> LubyRestarts {
        LubyRestarts { base, index: 0 }
    }
}

impl Iterator for LubyRestarts {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        self.index += 1;
        Some(self.base * luby(self.index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fifteen() {
        let got: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(got, [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn powers_of_two_at_block_ends() {
        assert_eq!(luby(3), 2);
        assert_eq!(luby(7), 4);
        assert_eq!(luby(15), 8);
        assert_eq!(luby(31), 16);
    }

    #[test]
    fn restart_schedule_scales_by_base() {
        let s: Vec<u64> = LubyRestarts::new(100).take(7).collect();
        assert_eq!(s, [100, 100, 200, 100, 100, 200, 400]);
    }

    #[test]
    #[should_panic]
    fn zero_index_panics() {
        let _ = luby(0);
    }
}
