//! Clause storage: a slotted arena with stable ids, activities and lazy
//! deletion, holding both problem clauses and learned (bound-)conflict
//! clauses.

use pbo_core::Lit;

/// Provenance of a derivation beyond the instance's own constraints — a
/// small bit set threaded through constraint loading, propagation and
/// conflict analysis (see `Engine::set_taint_tracking`).
///
/// A learned clause with [`Taint::NONE`] is implied by the instance
/// alone and therefore sound to share across cube workers; the other
/// bits record what else the derivation leaned on:
///
/// * [`Taint::ASSUMPTION`] — a root assumption
///   (`Engine::assume_at_root`, i.e. a cube literal) was resolved away
///   or dropped at level 0. The clause is valid only inside the cube.
/// * [`Taint::INCUMBENT`] — an upper-bound cost cut (or a constraint
///   itself conditional on an incumbent) entered the derivation. The
///   clause is implied by *instance ∧ (cost ≤ upper − 1)* for the
///   producer's incumbent `upper` at the time.
/// * [`Taint::IMPORTED`] — the clause arrived through the shared-clause
///   pool; it is already globally known and is never re-exported.
#[derive(Copy, Clone, PartialEq, Eq, Default, Debug)]
pub struct Taint(u8);

impl Taint {
    /// Implied by the instance alone.
    pub const NONE: Taint = Taint(0);
    /// Derivation used a root assumption (cube literal).
    pub const ASSUMPTION: Taint = Taint(1);
    /// Derivation used an incumbent-conditional constraint (cost cut,
    /// head-seed clause, ad-hoc bound conflict under an upper bound).
    pub const INCUMBENT: Taint = Taint(2);
    /// Installed from the shared pool (already global; never re-export).
    pub const IMPORTED: Taint = Taint(4);

    /// Returns `true` if any bit of `other` is set in `self`.
    #[inline]
    pub fn intersects(self, other: Taint) -> bool {
        self.0 & other.0 != 0
    }

    /// Returns `true` if no bit is set: the derivation used nothing
    /// beyond the instance.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for Taint {
    type Output = Taint;
    #[inline]
    fn bitor(self, rhs: Taint) -> Taint {
        Taint(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for Taint {
    #[inline]
    fn bitor_assign(&mut self, rhs: Taint) {
        self.0 |= rhs.0;
    }
}

/// Stable identifier of a clause in the [`ClauseDb`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ClauseId(pub(crate) u32);

impl ClauseId {
    /// Raw index value (for diagnostics).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// A clause: a disjunction of literals. The first two literals are the
/// watched ones.
#[derive(Clone, Debug)]
pub struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
    /// Literal block distance at learn time (number of distinct decision
    /// levels among the clause's literals); 0 for problem clauses.
    lbd: u32,
    /// What the clause's derivation depended on beyond the instance
    /// ([`Taint::NONE`] unless taint tracking was on when it was
    /// learned/added).
    taint: Taint,
}

impl Clause {
    /// The literals; `lits()[0]` and `lits()[1]` are watched.
    #[inline]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Mutable access for watch maintenance (crate-internal).
    #[inline]
    pub(crate) fn lits_mut(&mut self) -> &mut [Lit] {
        &mut self.lits
    }

    /// Whether this clause was learned during search.
    #[inline]
    pub fn is_learnt(&self) -> bool {
        self.learnt
    }

    /// Activity used by the learned-clause reduction policy.
    #[inline]
    pub fn activity(&self) -> f64 {
        self.activity
    }

    /// Literal block distance recorded when the clause was learned — the
    /// Glucose-style quality measure (lower is better); 0 for problem
    /// clauses.
    #[inline]
    pub fn lbd(&self) -> u32 {
        self.lbd
    }

    /// Derivation provenance recorded when the clause entered the
    /// database (see [`Taint`]).
    #[inline]
    pub fn taint(&self) -> Taint {
        self.taint
    }

    /// Number of literals.
    #[inline]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Returns `true` if the clause has no literals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }
}

/// Arena of clauses with stable ids and a free list.
#[derive(Clone, Debug, Default)]
pub struct ClauseDb {
    slots: Vec<Option<Clause>>,
    free: Vec<u32>,
    num_learnt: usize,
    activity_inc: f64,
}

impl ClauseDb {
    /// Creates an empty database.
    pub fn new() -> ClauseDb {
        ClauseDb { slots: Vec::new(), free: Vec::new(), num_learnt: 0, activity_inc: 1.0 }
    }

    /// Inserts a clause, returning its stable id.
    pub fn insert(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseId {
        if learnt {
            self.num_learnt += 1;
        }
        let clause = Clause { lits, learnt, activity: 0.0, lbd: 0, taint: Taint::NONE };
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = Some(clause);
            ClauseId(slot)
        } else {
            self.slots.push(Some(clause));
            ClauseId((self.slots.len() - 1) as u32)
        }
    }

    /// Records the LBD of a (just-learned) clause.
    pub fn set_lbd(&mut self, id: ClauseId, lbd: u32) {
        self.get_mut(id).lbd = lbd;
    }

    /// Records the derivation provenance of a (just-inserted) clause.
    pub fn set_taint(&mut self, id: ClauseId, taint: Taint) {
        self.get_mut(id).taint = taint;
    }

    /// Removes a clause (its id may be reused later).
    pub fn remove(&mut self, id: ClauseId) {
        if let Some(c) = self.slots[id.0 as usize].take() {
            if c.learnt {
                self.num_learnt -= 1;
            }
            self.free.push(id.0);
        }
    }

    /// Borrows a clause.
    ///
    /// # Panics
    ///
    /// Panics if the id was removed.
    #[inline]
    pub fn get(&self, id: ClauseId) -> &Clause {
        self.slots[id.0 as usize].as_ref().expect("clause was removed")
    }

    /// Mutably borrows a clause.
    ///
    /// # Panics
    ///
    /// Panics if the id was removed.
    #[inline]
    pub fn get_mut(&mut self, id: ClauseId) -> &mut Clause {
        self.slots[id.0 as usize].as_mut().expect("clause was removed")
    }

    /// Returns `true` if the id refers to a live clause.
    pub fn is_live(&self, id: ClauseId) -> bool {
        self.slots.get(id.0 as usize).is_some_and(|s| s.is_some())
    }

    /// Number of live clauses.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Returns `true` if the database holds no live clause.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of live learned clauses.
    pub fn num_learnt(&self) -> usize {
        self.num_learnt
    }

    /// Iterates over `(id, clause)` pairs of live clauses.
    pub fn iter(&self) -> impl Iterator<Item = (ClauseId, &Clause)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|c| (ClauseId(i as u32), c)))
    }

    /// Bumps a clause's activity (for the reduction policy).
    pub fn bump_activity(&mut self, id: ClauseId) {
        let inc = self.activity_inc;
        let c = self.get_mut(id);
        c.activity += inc;
        if c.activity > 1e20 {
            for slot in self.slots.iter_mut().flatten() {
                slot.activity *= 1e-20;
            }
            self.activity_inc *= 1e-20;
        }
    }

    /// Decays all clause activities (O(1)).
    pub fn decay_activity(&mut self) {
        self.activity_inc /= 0.999;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::new(i, pos)
    }

    #[test]
    fn insert_get_remove() {
        let mut db = ClauseDb::new();
        let a = db.insert(vec![lit(0, true), lit(1, false)], false);
        let b = db.insert(vec![lit(2, true)], true);
        assert_eq!(db.len(), 2);
        assert_eq!(db.num_learnt(), 1);
        assert_eq!(db.get(a).len(), 2);
        assert!(db.get(b).is_learnt());
        db.remove(b);
        assert_eq!(db.len(), 1);
        assert_eq!(db.num_learnt(), 0);
        assert!(!db.is_live(b));
    }

    #[test]
    fn slot_reuse_keeps_ids_distinct_over_time() {
        let mut db = ClauseDb::new();
        let a = db.insert(vec![lit(0, true)], false);
        db.remove(a);
        let b = db.insert(vec![lit(1, true)], false);
        // Slot is reused but the clause is the new one.
        assert_eq!(db.get(b).lits(), &[lit(1, true)]);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn iter_skips_removed() {
        let mut db = ClauseDb::new();
        let a = db.insert(vec![lit(0, true)], false);
        let _b = db.insert(vec![lit(1, true)], false);
        db.remove(a);
        let ids: Vec<ClauseId> = db.iter().map(|(id, _)| id).collect();
        assert_eq!(ids.len(), 1);
    }

    #[test]
    fn taint_bit_algebra() {
        let t = Taint::ASSUMPTION | Taint::INCUMBENT;
        assert!(t.intersects(Taint::ASSUMPTION));
        assert!(t.intersects(Taint::INCUMBENT));
        assert!(!t.intersects(Taint::IMPORTED));
        assert!(!Taint::NONE.intersects(t));
        assert!(Taint::NONE.is_none());
        assert!(!t.is_none());
        let mut u = Taint::NONE;
        u |= Taint::IMPORTED;
        assert!(u.intersects(Taint::IMPORTED));
        let mut db = ClauseDb::new();
        let a = db.insert(vec![lit(0, true)], true);
        assert!(db.get(a).taint().is_none());
        db.set_taint(a, t);
        assert_eq!(db.get(a).taint(), t);
    }

    #[test]
    fn activity_bump_and_rescale() {
        let mut db = ClauseDb::new();
        let a = db.insert(vec![lit(0, true)], true);
        for _ in 0..50 {
            db.decay_activity();
        }
        db.bump_activity(a);
        assert!(db.get(a).activity() > 0.0);
    }
}
