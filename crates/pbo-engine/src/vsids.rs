//! VSIDS branching heuristic: an indexed max-heap over variable
//! activities, with exponential decay implemented by growing the bump
//! increment (the Chaff/MiniSat trick).

use pbo_core::Var;

const RESCALE_LIMIT: f64 = 1e100;

/// Indexed max-heap of variable activities.
///
/// Variables are bumped when they participate in conflicts; decaying all
/// activities is O(1) (the increment grows instead). The solver pops the
/// most active variable when deciding.
#[derive(Clone, Debug)]
pub struct Vsids {
    heap: Vec<u32>,
    pos: Vec<i32>,
    activity: Vec<f64>,
    inc: f64,
    decay: f64,
}

impl Vsids {
    /// Creates a heap over `num_vars` variables, all with activity 0 and
    /// all initially enqueued.
    pub fn new(num_vars: usize, decay: f64) -> Vsids {
        assert!((0.0..1.0).contains(&decay) || decay == 1.0, "decay must be in (0,1]");
        let mut v = Vsids {
            heap: Vec::with_capacity(num_vars),
            pos: vec![-1; num_vars],
            activity: vec![0.0; num_vars],
            inc: 1.0,
            decay,
        };
        for i in 0..num_vars {
            v.insert(Var::new(i));
        }
        v
    }

    /// Current activity of a variable.
    pub fn activity(&self, var: Var) -> f64 {
        self.activity[var.index()]
    }

    /// Returns `true` if the variable is currently in the heap.
    pub fn contains(&self, var: Var) -> bool {
        self.pos[var.index()] >= 0
    }

    /// Number of enqueued variables.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no variable is enqueued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Increases the activity of `var` by the current increment,
    /// rescaling everything if it overflows.
    pub fn bump(&mut self, var: Var) {
        let i = var.index();
        self.activity[i] += self.inc;
        if self.activity[i] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1.0 / RESCALE_LIMIT;
            }
            self.inc *= 1.0 / RESCALE_LIMIT;
        }
        if self.pos[i] >= 0 {
            self.sift_up(self.pos[i] as usize);
        }
    }

    /// Decays all activities (O(1): the increment grows).
    pub fn decay(&mut self) {
        self.inc /= self.decay;
    }

    /// Inserts a variable (no-op if present).
    pub fn insert(&mut self, var: Var) {
        let i = var.index();
        if self.pos[i] >= 0 {
            return;
        }
        self.pos[i] = self.heap.len() as i32;
        self.heap.push(i as u32);
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the variable with the highest activity.
    pub fn pop_max(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0] as usize;
        let last = self.heap.pop().unwrap();
        self.pos[top] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0);
        }
        Some(Var::new(top))
    }

    fn better(&self, a: u32, b: u32) -> bool {
        self.activity[a as usize] > self.activity[b as usize]
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.better(self.heap[i], self.heap[parent]) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.better(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.better(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a as i32;
        self.pos[self.heap[b] as usize] = b as i32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_highest_activity_first() {
        let mut v = Vsids::new(4, 0.95);
        v.bump(Var::new(2));
        v.bump(Var::new(2));
        v.bump(Var::new(1));
        assert_eq!(v.pop_max(), Some(Var::new(2)));
        assert_eq!(v.pop_max(), Some(Var::new(1)));
    }

    #[test]
    fn reinsert_after_pop() {
        let mut v = Vsids::new(2, 0.95);
        let a = v.pop_max().unwrap();
        assert!(!v.contains(a));
        v.insert(a);
        assert!(v.contains(a));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn drains_every_variable_exactly_once() {
        let mut v = Vsids::new(10, 0.95);
        let mut seen = [false; 10];
        while let Some(var) = v.pop_max() {
            assert!(!seen[var.index()]);
            seen[var.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(v.is_empty());
    }

    #[test]
    fn decay_prefers_recent_bumps() {
        let mut v = Vsids::new(2, 0.5);
        v.bump(Var::new(0));
        v.decay();
        v.decay();
        v.bump(Var::new(1)); // later bump with grown increment outweighs
        assert!(v.activity(Var::new(1)) > v.activity(Var::new(0)));
        assert_eq!(v.pop_max(), Some(Var::new(1)));
    }

    #[test]
    fn rescaling_keeps_ordering() {
        let mut v = Vsids::new(3, 0.001);
        // Grow the increment aggressively to force a rescale.
        for _ in 0..40 {
            v.decay();
            v.bump(Var::new(1));
        }
        v.bump(Var::new(0));
        assert_eq!(v.pop_max(), Some(Var::new(1)));
        assert!(v.activity(Var::new(1)) <= 1e100);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut v = Vsids::new(2, 0.9);
        v.insert(Var::new(0));
        assert_eq!(v.len(), 2);
    }
}
