//! Conflict-driven search engine for pseudo-Boolean formulas.
//!
//! This crate provides the SAT-solving substrate of the workspace (the
//! machinery the DATE'05 paper inherits from Chaff-era solvers):
//!
//! * [`Engine`] — assignment trail with decision levels, two-watched
//!   literal propagation for clauses, counter/slack propagation for
//!   general PB constraints, first-UIP conflict analysis with clause
//!   learning and non-chronological backtracking, VSIDS branching and
//!   learned-database reduction;
//! * [`Conflict::AdHoc`] — the entry point for *bound conflicts*: the
//!   branch-and-bound layer builds the `omega_bc` clause of sec. 4 and
//!   injects it here, reusing the standard analysis for non-chronological
//!   backtracking on bounds;
//! * [`luby`] / [`LubyRestarts`] — restart scheduling;
//! * [`Vsids`] — the activity heap, exposed for reuse by branching
//!   heuristics.
//!
//! # Examples
//!
//! Drive the engine by hand on a tiny formula:
//!
//! ```
//! use pbo_core::{Lit, PbConstraint};
//! use pbo_engine::Engine;
//!
//! let mut e = Engine::new(3);
//! // x1 + x2 >= 1,  2*~x1 + x3 >= 2
//! e.add_constraint(&PbConstraint::clause([Lit::new(0, true), Lit::new(1, true)])).unwrap();
//! e.add_constraint(&PbConstraint::try_new(
//!     vec![(2, Lit::new(0, false)), (1, Lit::new(2, true))], 2).unwrap()).unwrap();
//! // ~x1 is forced at the root: the constraint needs weight 2 out of an
//! // available 3, so the weight-2 literal ~x1 may not be lost.
//! assert!(e.propagate().is_none());
//! assert!(e.assignment().is_true(Lit::new(0, false)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clause;
mod engine;
mod luby;
mod vsids;

pub use clause::{Clause, ClauseDb, ClauseId, Taint};
pub use engine::{
    Conflict, Engine, EngineStats, PbId, Reason, Resolution, RootConflict, TrailObserver,
};
pub use luby::{luby, LubyRestarts};
pub use vsids::Vsids;

#[cfg(test)]
mod engine_tests;
