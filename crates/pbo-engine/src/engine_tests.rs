//! Engine behaviour tests: propagation, learning, backjumping, bound
//! conflicts and end-to-end satisfiability cross-checked against the
//! exhaustive reference solver.

use pbo_core::{brute_force, Instance, InstanceBuilder, Lit, PbConstraint, Var};

use crate::engine::{Conflict, Engine, Reason, Resolution};

fn lit(i: usize, pos: bool) -> Lit {
    Lit::new(i, pos)
}

/// Loads every constraint of `inst` into a fresh engine.
fn engine_for(inst: &Instance) -> Result<Engine, ()> {
    let mut e = Engine::new(inst.num_vars());
    for c in inst.constraints() {
        if e.add_constraint(c).is_err() {
            return Err(());
        }
    }
    Ok(e)
}

/// Minimal CDCL driver used to exercise the engine end to end.
fn solve(e: &mut Engine) -> Option<Vec<bool>> {
    if e.is_root_unsat() {
        return None;
    }
    loop {
        if let Some(confl) = e.propagate() {
            match e.resolve_conflict(confl) {
                Resolution::Unsat => return None,
                Resolution::Backjumped { .. } => {}
            }
        } else if let Some(v) = e.pick_branch_var() {
            let phase = e.phase_of(v);
            e.decide(v.lit(phase));
        } else {
            return Some(e.model());
        }
    }
}

#[test]
fn unit_clause_chain_propagates() {
    let mut e = Engine::new(4);
    // x1;  ~x1 \/ x2;  ~x2 \/ x3;  ~x3 \/ x4
    e.add_constraint(&PbConstraint::clause([lit(0, true)])).unwrap();
    e.add_constraint(&PbConstraint::clause([lit(0, false), lit(1, true)])).unwrap();
    e.add_constraint(&PbConstraint::clause([lit(1, false), lit(2, true)])).unwrap();
    e.add_constraint(&PbConstraint::clause([lit(2, false), lit(3, true)])).unwrap();
    assert!(e.propagate().is_none());
    for i in 0..4 {
        assert!(e.assignment().is_true(lit(i, true)), "x{} should be true", i + 1);
    }
    assert_eq!(e.decision_level(), 0);
}

#[test]
fn pb_constraint_forces_heavy_literal() {
    let mut e = Engine::new(3);
    // 3*x1 + x2 + x3 >= 3 : x1 forced immediately (slack 1 < coeff 3).
    e.add_constraint(
        &PbConstraint::try_new(vec![(3, lit(0, true)), (1, lit(1, true)), (1, lit(2, true))], 3)
            .unwrap(),
    )
    .unwrap();
    assert!(e.propagate().is_none());
    assert!(e.assignment().is_true(lit(0, true)));
    assert!(e.assignment().is_unassigned(lit(1, true)));
}

#[test]
fn pb_propagation_after_decisions() {
    let mut e = Engine::new(3);
    // 2*x1 + x2 + x3 >= 2
    e.add_constraint(
        &PbConstraint::try_new(vec![(2, lit(0, true)), (1, lit(1, true)), (1, lit(2, true))], 2)
            .unwrap(),
    )
    .unwrap();
    assert!(e.propagate().is_none());
    assert!(e.assignment().is_unassigned(lit(0, true)), "nothing forced initially");
    // Falsify x2: slack 1, x1 now forced (coeff 2 > 1).
    e.decide(lit(1, false));
    assert!(e.propagate().is_none());
    assert!(e.assignment().is_true(lit(0, true)));
    assert_eq!(e.level_of(Var::new(0)), 1);
    assert!(matches!(e.reason_of(Var::new(0)), Reason::Pb(_)));
}

#[test]
fn pb_conflict_detected() {
    let mut e = Engine::new(2);
    // x1 + x2 >= 2 forces both at root; adding x1+x2 <= 1 as ~x1 + ~x2 >= 1
    // must conflict.
    e.add_constraint(&PbConstraint::at_least(2, [lit(0, true), lit(1, true)])).unwrap();
    assert!(e.propagate().is_none());
    let err = e.add_constraint(&PbConstraint::clause([lit(0, false), lit(1, false)]));
    assert!(err.is_err());
    assert!(e.is_root_unsat());
}

#[test]
fn learning_and_backjumping() {
    // Deciding a then b forces c and ~c: conflict at level 2; the learned
    // clause (~a \/ ~b shaped) asserts at level 1.
    let mut e = Engine::new(3);
    let (a, b, c) = (lit(0, true), lit(1, true), lit(2, true));
    e.add_constraint(&PbConstraint::clause([!a, !b, c])).unwrap();
    e.add_constraint(&PbConstraint::clause([!a, !b, !c])).unwrap();
    e.decide(a);
    assert!(e.propagate().is_none());
    e.decide(b);
    let confl = e.propagate().expect("conflict expected");
    match e.resolve_conflict(confl) {
        Resolution::Backjumped { level, learnt_len, asserted, .. } => {
            assert_eq!(level, 1, "non-chronological jump to the other decision's level");
            assert_eq!(learnt_len, 2);
            assert_eq!(asserted, !b, "first-UIP flips the deeper decision");
        }
        Resolution::Unsat => panic!("not unsat"),
    }
    assert!(e.propagate().is_none());
    assert!(e.assignment().is_true(!b));
}

#[test]
fn root_conflict_is_unsat() {
    let mut e = Engine::new(1);
    e.add_constraint(&PbConstraint::clause([lit(0, true)])).unwrap();
    assert!(e.add_constraint(&PbConstraint::clause([lit(0, false)])).is_err());
}

#[test]
fn adhoc_conflict_backjumps_non_chronologically() {
    // Decide x1..x4 at levels 1..4; inject a bound conflict mentioning
    // only levels 1 and 2. The engine must jump below level 4.
    let mut e = Engine::new(5);
    for i in 0..4 {
        e.decide(lit(i, true));
        assert!(e.propagate().is_none());
    }
    assert_eq!(e.decision_level(), 4);
    let omega_bc = vec![lit(0, false), lit(1, false)]; // both currently false
    match e.resolve_conflict(Conflict::AdHoc(omega_bc)) {
        Resolution::Backjumped { level, asserted, .. } => {
            assert!(level <= 1, "expected non-chronological jump, got level {level}");
            assert_eq!(asserted, lit(1, false));
        }
        Resolution::Unsat => panic!("not terminal"),
    }
    // Levels 3 and 4 decisions were undone.
    assert!(e.assignment().is_unassigned(lit(2, true)));
    assert!(e.assignment().is_unassigned(lit(3, true)));
    assert_eq!(e.stats.adhoc_conflicts, 1);
}

#[test]
fn adhoc_conflict_at_root_is_unsat() {
    let mut e = Engine::new(2);
    assert_eq!(e.resolve_conflict(Conflict::AdHoc(vec![])), Resolution::Unsat);
    assert!(e.is_root_unsat());
}

#[test]
fn slack_restored_after_backjump() {
    let mut e = Engine::new(3);
    let c = PbConstraint::try_new(vec![(2, lit(0, true)), (2, lit(1, true)), (1, lit(2, true))], 3)
        .unwrap();
    e.add_constraint(&c).unwrap();
    assert!(e.propagate().is_none());
    e.decide(lit(0, false));
    assert!(e.propagate().is_none());
    // x2 forced true (slack 0 after losing coeff 2: 2+1-3 = 0 < 2).
    assert!(e.assignment().is_true(lit(1, true)));
    e.backjump_to(0);
    assert!(e.assignment().is_unassigned(lit(0, true)));
    assert!(e.assignment().is_unassigned(lit(1, true)));
    // Slack must be fully restored: deciding the other branch behaves
    // symmetrically.
    e.decide(lit(1, false));
    assert!(e.propagate().is_none());
    assert!(e.assignment().is_true(lit(0, true)));
}

#[test]
fn cut_addition_and_deactivation() {
    let mut e = Engine::new(2);
    // Cut: ~x1 + ~x2 >= 1 (cost bound style).
    let cut = PbConstraint::clause([lit(0, false), lit(1, false)]);
    let id = e.add_pb_cut(
        &PbConstraint::try_new(vec![(1, lit(0, false)), (1, lit(1, false))], 1).unwrap(),
    );
    // Clause-shaped cuts still go through the PB path via add_pb_cut.
    let id = id.expect("cut addable");
    e.decide(lit(0, true));
    assert!(e.propagate().is_none());
    assert!(e.assignment().is_true(lit(1, false)), "cut propagates ~x2");
    e.backjump_to(0);
    e.deactivate_pb(id);
    e.decide(lit(0, true));
    assert!(e.propagate().is_none());
    assert!(e.assignment().is_unassigned(lit(1, false)), "deactivated cut is inert");
    drop(cut);
}

#[test]
fn solves_satisfiable_formula() {
    let mut b = InstanceBuilder::new();
    let v = b.new_vars(4);
    b.add_clause([v[0].positive(), v[1].positive()]);
    b.add_at_most(1, [v[0].positive(), v[1].positive()]);
    b.add_at_least(2, [v[1].positive(), v[2].positive(), v[3].positive()]);
    let inst = b.build().unwrap();
    let mut e = engine_for(&inst).unwrap();
    let model = solve(&mut e).expect("satisfiable");
    assert!(inst.is_feasible(&model));
}

#[test]
fn detects_unsatisfiable_formula() {
    // Pigeonhole: 3 pigeons, 2 holes.
    let mut b = InstanceBuilder::new();
    let p: Vec<Vec<Var>> = (0..3).map(|_| b.new_vars(2)).collect();
    for row in &p {
        b.add_clause(row.iter().map(|v| v.positive()));
    }
    for h in 0..2 {
        b.add_at_most(1, p.iter().map(|row| row[h].positive()));
    }
    let inst = b.build().unwrap();
    match engine_for(&inst) {
        Err(()) => {} // already unsat at root — fine
        Ok(mut e) => assert!(solve(&mut e).is_none()),
    }
}

#[test]
fn agrees_with_brute_force_on_random_instances() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xb5010);
    for round in 0..60 {
        let n = rng.gen_range(3..9);
        let mut b = InstanceBuilder::new();
        let vars = b.new_vars(n);
        let m = rng.gen_range(2..10);
        for _ in 0..m {
            let len = rng.gen_range(1..=3.min(n));
            let mut idxs: Vec<usize> = (0..n).collect();
            for i in 0..len {
                let j = rng.gen_range(i..n);
                idxs.swap(i, j);
            }
            let terms: Vec<(i64, Lit)> = idxs[..len]
                .iter()
                .map(|&i| (rng.gen_range(1..4), vars[i].lit(rng.gen_bool(0.5))))
                .collect();
            let max: i64 = terms.iter().map(|t| t.0).sum();
            let rhs = rng.gen_range(1..=max);
            b.add_linear(terms, pbo_core::RelOp::Ge, rhs);
        }
        let inst = b.build().unwrap();
        let expected = brute_force(&inst).cost().is_some();
        let got = match engine_for(&inst) {
            Err(()) => false,
            Ok(mut e) => {
                let model = solve(&mut e);
                if let Some(m) = &model {
                    assert!(inst.is_feasible(m), "round {round}: model infeasible");
                }
                model.is_some()
            }
        };
        assert_eq!(got, expected, "round {round}: SAT/UNSAT mismatch");
    }
}

#[test]
fn restart_keeps_learnt_clauses_and_correctness() {
    let mut b = InstanceBuilder::new();
    let v = b.new_vars(6);
    for i in 0..5 {
        b.add_clause([v[i].positive(), v[i + 1].positive()]);
        b.add_at_most(1, [v[i].positive(), v[i + 1].positive()]);
    }
    let inst = b.build().unwrap();
    let mut e = engine_for(&inst).unwrap();
    // Interleave a restart into solving.
    e.decide(Lit::new(0, true));
    assert!(e.propagate().is_none());
    e.restart();
    assert_eq!(e.decision_level(), 0);
    let model = solve(&mut e).expect("satisfiable");
    assert!(inst.is_feasible(&model));
    assert_eq!(e.stats.restarts, 1);
}

#[test]
fn reduce_learnts_keeps_solver_sound() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let mut b = InstanceBuilder::new();
    let n = 12;
    let vars = b.new_vars(n);
    for _ in 0..30 {
        let a = rng.gen_range(0..n);
        let mut c = rng.gen_range(0..n);
        while c == a {
            c = rng.gen_range(0..n);
        }
        b.add_clause([vars[a].lit(rng.gen_bool(0.5)), vars[c].lit(rng.gen_bool(0.5))]);
    }
    let inst = b.build().unwrap();
    let expected = brute_force(&inst).cost().is_some();
    let got = match engine_for(&inst) {
        Err(()) => false,
        Ok(mut e) => {
            // Force a few conflicts then reduce.
            let mut result = None;
            for _ in 0..200 {
                if let Some(confl) = e.propagate() {
                    if let Resolution::Unsat = e.resolve_conflict(confl) {
                        result = Some(false);
                        break;
                    }
                    e.reduce_learnts();
                } else if let Some(v) = e.pick_branch_var() {
                    e.decide(v.lit(e.phase_of(v)));
                } else {
                    assert!(inst.is_feasible(&e.model()));
                    result = Some(true);
                    break;
                }
            }
            result.unwrap_or_else(|| solve(&mut e).is_some())
        }
    };
    assert_eq!(got, expected);
}

#[test]
fn stats_track_activity() {
    let mut e = Engine::new(2);
    e.add_constraint(&PbConstraint::clause([lit(0, true), lit(1, true)])).unwrap();
    e.decide(lit(0, false));
    assert!(e.propagate().is_none());
    assert!(e.stats.decisions == 1);
    assert!(e.stats.propagations >= 2);
}

#[test]
fn sync_trail_reports_appended_literals() {
    let mut e = Engine::new(4);
    e.add_constraint(&PbConstraint::clause([lit(0, true), lit(1, true)])).unwrap();
    let obs = e.register_trail_observer();
    // First sync from scratch sees the whole trail.
    let keep = e.sync_trail(obs, 0);
    assert_eq!(keep, 0);
    let synced = e.trail_len();
    e.decide(lit(0, false));
    assert!(e.propagate().is_none()); // forces x2
                                      // Only the delta is replayed: keep == old mark, suffix is new.
    let keep = e.sync_trail(obs, synced);
    assert_eq!(keep, synced);
    assert_eq!(e.trail()[keep..].len(), e.trail_len() - synced);
    assert!(e.trail()[keep..].contains(&lit(0, false)));
    assert!(e.trail()[keep..].contains(&lit(1, true)));
}

#[test]
fn sync_trail_watermark_survives_backjump_and_regrowth() {
    let mut e = Engine::new(6);
    let obs = e.register_trail_observer();
    // Observer synced at depth 3; engine backjumps to depth 1 and grows a
    // different branch: keep must be the low watermark, not the mark.
    e.decide(lit(0, true));
    e.decide(lit(1, true));
    e.decide(lit(2, true));
    let mark = e.trail_len();
    assert_eq!(e.sync_trail(obs, 0), 0); // observer now mirrors 3 literals
    e.backjump_to(1); // lose x2, x3
    e.decide(lit(3, false));
    e.decide(lit(4, false));
    let keep = e.sync_trail(obs, mark);
    assert_eq!(keep, 1, "only the level-1 prefix survived");
    let replay: Vec<Lit> = e.trail()[keep..].to_vec();
    assert_eq!(replay, vec![lit(3, false), lit(4, false)]);
}

#[test]
fn sync_trail_watermark_resets_after_ack() {
    let mut e = Engine::new(4);
    let obs = e.register_trail_observer();
    e.decide(lit(0, true));
    assert_eq!(e.sync_trail(obs, 0), 0);
    // No backjump since the ack: the whole synced prefix is still valid.
    e.decide(lit(1, true));
    assert_eq!(e.sync_trail(obs, 1), 1);
    // Backjump to root invalidates everything.
    e.backjump_to(0);
    assert_eq!(e.sync_trail(obs, 2), 0);
}

#[test]
fn trail_observers_have_independent_watermarks() {
    let mut e = Engine::new(6);
    let a = e.register_trail_observer();
    e.decide(lit(0, true));
    e.decide(lit(1, true));
    // Observer `a` acks the 2-literal trail; observer `b` registers late
    // and has seen nothing yet.
    assert_eq!(e.sync_trail(a, 0), 0);
    let b = e.register_trail_observer();
    e.decide(lit(2, true));
    // `b`'s first sync replays from scratch without disturbing `a`.
    assert_eq!(e.sync_trail(b, 0), 0);
    assert_eq!(e.sync_trail(a, 2), 2);
    // A backjump invalidates both, from their own sync points.
    e.backjump_to(1);
    e.decide(lit(3, false));
    assert_eq!(e.sync_trail(a, 3), 1);
    // `a`'s ack must not have reset `b`'s watermark.
    assert_eq!(e.sync_trail(b, 3), 1);
}
