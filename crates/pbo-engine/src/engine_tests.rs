//! Engine behaviour tests: propagation, learning, backjumping, bound
//! conflicts and end-to-end satisfiability cross-checked against the
//! exhaustive reference solver.

use pbo_core::{brute_force, Instance, InstanceBuilder, Lit, PbConstraint, Var};

use crate::engine::{Conflict, Engine, Reason, Resolution};

fn lit(i: usize, pos: bool) -> Lit {
    Lit::new(i, pos)
}

/// Loads every constraint of `inst` into a fresh engine.
fn engine_for(inst: &Instance) -> Result<Engine, ()> {
    let mut e = Engine::new(inst.num_vars());
    for c in inst.constraints() {
        if e.add_constraint(c).is_err() {
            return Err(());
        }
    }
    Ok(e)
}

/// Minimal CDCL driver used to exercise the engine end to end.
fn solve(e: &mut Engine) -> Option<Vec<bool>> {
    if e.is_root_unsat() {
        return None;
    }
    loop {
        if let Some(confl) = e.propagate() {
            match e.resolve_conflict(confl) {
                Resolution::Unsat => return None,
                Resolution::Backjumped { .. } => {}
            }
        } else if let Some(v) = e.pick_branch_var() {
            let phase = e.phase_of(v);
            e.decide(v.lit(phase));
        } else {
            return Some(e.model());
        }
    }
}

#[test]
fn unit_clause_chain_propagates() {
    let mut e = Engine::new(4);
    // x1;  ~x1 \/ x2;  ~x2 \/ x3;  ~x3 \/ x4
    e.add_constraint(&PbConstraint::clause([lit(0, true)])).unwrap();
    e.add_constraint(&PbConstraint::clause([lit(0, false), lit(1, true)])).unwrap();
    e.add_constraint(&PbConstraint::clause([lit(1, false), lit(2, true)])).unwrap();
    e.add_constraint(&PbConstraint::clause([lit(2, false), lit(3, true)])).unwrap();
    assert!(e.propagate().is_none());
    for i in 0..4 {
        assert!(e.assignment().is_true(lit(i, true)), "x{} should be true", i + 1);
    }
    assert_eq!(e.decision_level(), 0);
}

#[test]
fn pb_constraint_forces_heavy_literal() {
    let mut e = Engine::new(3);
    // 3*x1 + x2 + x3 >= 3 : x1 forced immediately (slack 1 < coeff 3).
    e.add_constraint(
        &PbConstraint::try_new(vec![(3, lit(0, true)), (1, lit(1, true)), (1, lit(2, true))], 3)
            .unwrap(),
    )
    .unwrap();
    assert!(e.propagate().is_none());
    assert!(e.assignment().is_true(lit(0, true)));
    assert!(e.assignment().is_unassigned(lit(1, true)));
}

#[test]
fn pb_propagation_after_decisions() {
    let mut e = Engine::new(3);
    // 2*x1 + x2 + x3 >= 2
    e.add_constraint(
        &PbConstraint::try_new(vec![(2, lit(0, true)), (1, lit(1, true)), (1, lit(2, true))], 2)
            .unwrap(),
    )
    .unwrap();
    assert!(e.propagate().is_none());
    assert!(e.assignment().is_unassigned(lit(0, true)), "nothing forced initially");
    // Falsify x2: slack 1, x1 now forced (coeff 2 > 1).
    e.decide(lit(1, false));
    assert!(e.propagate().is_none());
    assert!(e.assignment().is_true(lit(0, true)));
    assert_eq!(e.level_of(Var::new(0)), 1);
    assert!(matches!(e.reason_of(Var::new(0)), Reason::Pb(_)));
}

#[test]
fn pb_conflict_detected() {
    let mut e = Engine::new(2);
    // x1 + x2 >= 2 forces both at root; adding x1+x2 <= 1 as ~x1 + ~x2 >= 1
    // must conflict.
    e.add_constraint(&PbConstraint::at_least(2, [lit(0, true), lit(1, true)])).unwrap();
    assert!(e.propagate().is_none());
    let err = e.add_constraint(&PbConstraint::clause([lit(0, false), lit(1, false)]));
    assert!(err.is_err());
    assert!(e.is_root_unsat());
}

#[test]
fn learning_and_backjumping() {
    // Deciding a then b forces c and ~c: conflict at level 2; the learned
    // clause (~a \/ ~b shaped) asserts at level 1.
    let mut e = Engine::new(3);
    let (a, b, c) = (lit(0, true), lit(1, true), lit(2, true));
    e.add_constraint(&PbConstraint::clause([!a, !b, c])).unwrap();
    e.add_constraint(&PbConstraint::clause([!a, !b, !c])).unwrap();
    e.decide(a);
    assert!(e.propagate().is_none());
    e.decide(b);
    let confl = e.propagate().expect("conflict expected");
    match e.resolve_conflict(confl) {
        Resolution::Backjumped { level, learnt_len, asserted, .. } => {
            assert_eq!(level, 1, "non-chronological jump to the other decision's level");
            assert_eq!(learnt_len, 2);
            assert_eq!(asserted, !b, "first-UIP flips the deeper decision");
        }
        Resolution::Unsat => panic!("not unsat"),
    }
    assert!(e.propagate().is_none());
    assert!(e.assignment().is_true(!b));
}

#[test]
fn root_conflict_is_unsat() {
    let mut e = Engine::new(1);
    e.add_constraint(&PbConstraint::clause([lit(0, true)])).unwrap();
    assert!(e.add_constraint(&PbConstraint::clause([lit(0, false)])).is_err());
}

#[test]
fn adhoc_conflict_backjumps_non_chronologically() {
    // Decide x1..x4 at levels 1..4; inject a bound conflict mentioning
    // only levels 1 and 2. The engine must jump below level 4.
    let mut e = Engine::new(5);
    for i in 0..4 {
        e.decide(lit(i, true));
        assert!(e.propagate().is_none());
    }
    assert_eq!(e.decision_level(), 4);
    let omega_bc = vec![lit(0, false), lit(1, false)]; // both currently false
    match e.resolve_conflict(Conflict::AdHoc(omega_bc)) {
        Resolution::Backjumped { level, asserted, .. } => {
            assert!(level <= 1, "expected non-chronological jump, got level {level}");
            assert_eq!(asserted, lit(1, false));
        }
        Resolution::Unsat => panic!("not terminal"),
    }
    // Levels 3 and 4 decisions were undone.
    assert!(e.assignment().is_unassigned(lit(2, true)));
    assert!(e.assignment().is_unassigned(lit(3, true)));
    assert_eq!(e.stats.adhoc_conflicts, 1);
}

#[test]
fn adhoc_conflict_at_root_is_unsat() {
    let mut e = Engine::new(2);
    assert_eq!(e.resolve_conflict(Conflict::AdHoc(vec![])), Resolution::Unsat);
    assert!(e.is_root_unsat());
}

#[test]
fn slack_restored_after_backjump() {
    let mut e = Engine::new(3);
    let c = PbConstraint::try_new(vec![(2, lit(0, true)), (2, lit(1, true)), (1, lit(2, true))], 3)
        .unwrap();
    e.add_constraint(&c).unwrap();
    assert!(e.propagate().is_none());
    e.decide(lit(0, false));
    assert!(e.propagate().is_none());
    // x2 forced true (slack 0 after losing coeff 2: 2+1-3 = 0 < 2).
    assert!(e.assignment().is_true(lit(1, true)));
    e.backjump_to(0);
    assert!(e.assignment().is_unassigned(lit(0, true)));
    assert!(e.assignment().is_unassigned(lit(1, true)));
    // Slack must be fully restored: deciding the other branch behaves
    // symmetrically.
    e.decide(lit(1, false));
    assert!(e.propagate().is_none());
    assert!(e.assignment().is_true(lit(0, true)));
}

#[test]
fn cut_addition_and_deactivation() {
    let mut e = Engine::new(2);
    // Cut: ~x1 + ~x2 >= 1 (cost bound style).
    let cut = PbConstraint::clause([lit(0, false), lit(1, false)]);
    let id = e.add_pb_cut(
        &PbConstraint::try_new(vec![(1, lit(0, false)), (1, lit(1, false))], 1).unwrap(),
    );
    // Clause-shaped cuts still go through the PB path via add_pb_cut.
    let id = id.expect("cut addable");
    e.decide(lit(0, true));
    assert!(e.propagate().is_none());
    assert!(e.assignment().is_true(lit(1, false)), "cut propagates ~x2");
    e.backjump_to(0);
    e.deactivate_pb(id);
    e.decide(lit(0, true));
    assert!(e.propagate().is_none());
    assert!(e.assignment().is_unassigned(lit(1, false)), "deactivated cut is inert");
    drop(cut);
}

#[test]
fn solves_satisfiable_formula() {
    let mut b = InstanceBuilder::new();
    let v = b.new_vars(4);
    b.add_clause([v[0].positive(), v[1].positive()]);
    b.add_at_most(1, [v[0].positive(), v[1].positive()]);
    b.add_at_least(2, [v[1].positive(), v[2].positive(), v[3].positive()]);
    let inst = b.build().unwrap();
    let mut e = engine_for(&inst).unwrap();
    let model = solve(&mut e).expect("satisfiable");
    assert!(inst.is_feasible(&model));
}

#[test]
fn detects_unsatisfiable_formula() {
    // Pigeonhole: 3 pigeons, 2 holes.
    let mut b = InstanceBuilder::new();
    let p: Vec<Vec<Var>> = (0..3).map(|_| b.new_vars(2)).collect();
    for row in &p {
        b.add_clause(row.iter().map(|v| v.positive()));
    }
    for h in 0..2 {
        b.add_at_most(1, p.iter().map(|row| row[h].positive()));
    }
    let inst = b.build().unwrap();
    match engine_for(&inst) {
        Err(()) => {} // already unsat at root — fine
        Ok(mut e) => assert!(solve(&mut e).is_none()),
    }
}

#[test]
fn agrees_with_brute_force_on_random_instances() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xb5010);
    for round in 0..60 {
        let n = rng.gen_range(3..9);
        let mut b = InstanceBuilder::new();
        let vars = b.new_vars(n);
        let m = rng.gen_range(2..10);
        for _ in 0..m {
            let len = rng.gen_range(1..=3.min(n));
            let mut idxs: Vec<usize> = (0..n).collect();
            for i in 0..len {
                let j = rng.gen_range(i..n);
                idxs.swap(i, j);
            }
            let terms: Vec<(i64, Lit)> = idxs[..len]
                .iter()
                .map(|&i| (rng.gen_range(1..4), vars[i].lit(rng.gen_bool(0.5))))
                .collect();
            let max: i64 = terms.iter().map(|t| t.0).sum();
            let rhs = rng.gen_range(1..=max);
            b.add_linear(terms, pbo_core::RelOp::Ge, rhs);
        }
        let inst = b.build().unwrap();
        let expected = brute_force(&inst).cost().is_some();
        let got = match engine_for(&inst) {
            Err(()) => false,
            Ok(mut e) => {
                let model = solve(&mut e);
                if let Some(m) = &model {
                    assert!(inst.is_feasible(m), "round {round}: model infeasible");
                }
                model.is_some()
            }
        };
        assert_eq!(got, expected, "round {round}: SAT/UNSAT mismatch");
    }
}

#[test]
fn restart_keeps_learnt_clauses_and_correctness() {
    let mut b = InstanceBuilder::new();
    let v = b.new_vars(6);
    for i in 0..5 {
        b.add_clause([v[i].positive(), v[i + 1].positive()]);
        b.add_at_most(1, [v[i].positive(), v[i + 1].positive()]);
    }
    let inst = b.build().unwrap();
    let mut e = engine_for(&inst).unwrap();
    // Interleave a restart into solving.
    e.decide(Lit::new(0, true));
    assert!(e.propagate().is_none());
    e.restart();
    assert_eq!(e.decision_level(), 0);
    let model = solve(&mut e).expect("satisfiable");
    assert!(inst.is_feasible(&model));
    assert_eq!(e.stats.restarts, 1);
}

#[test]
fn reduce_learnts_keeps_solver_sound() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let mut b = InstanceBuilder::new();
    let n = 12;
    let vars = b.new_vars(n);
    for _ in 0..30 {
        let a = rng.gen_range(0..n);
        let mut c = rng.gen_range(0..n);
        while c == a {
            c = rng.gen_range(0..n);
        }
        b.add_clause([vars[a].lit(rng.gen_bool(0.5)), vars[c].lit(rng.gen_bool(0.5))]);
    }
    let inst = b.build().unwrap();
    let expected = brute_force(&inst).cost().is_some();
    let got = match engine_for(&inst) {
        Err(()) => false,
        Ok(mut e) => {
            // Force a few conflicts then reduce.
            let mut result = None;
            for _ in 0..200 {
                if let Some(confl) = e.propagate() {
                    if let Resolution::Unsat = e.resolve_conflict(confl) {
                        result = Some(false);
                        break;
                    }
                    e.reduce_learnts();
                } else if let Some(v) = e.pick_branch_var() {
                    e.decide(v.lit(e.phase_of(v)));
                } else {
                    assert!(inst.is_feasible(&e.model()));
                    result = Some(true);
                    break;
                }
            }
            result.unwrap_or_else(|| solve(&mut e).is_some())
        }
    };
    assert_eq!(got, expected);
}

#[test]
fn stats_track_activity() {
    let mut e = Engine::new(2);
    e.add_constraint(&PbConstraint::clause([lit(0, true), lit(1, true)])).unwrap();
    e.decide(lit(0, false));
    assert!(e.propagate().is_none());
    assert!(e.stats.decisions == 1);
    assert!(e.stats.propagations >= 2);
}

#[test]
fn sync_trail_reports_appended_literals() {
    let mut e = Engine::new(4);
    e.add_constraint(&PbConstraint::clause([lit(0, true), lit(1, true)])).unwrap();
    let obs = e.register_trail_observer();
    // First sync from scratch sees the whole trail.
    let keep = e.sync_trail(obs, 0);
    assert_eq!(keep, 0);
    let synced = e.trail_len();
    e.decide(lit(0, false));
    assert!(e.propagate().is_none()); // forces x2
                                      // Only the delta is replayed: keep == old mark, suffix is new.
    let keep = e.sync_trail(obs, synced);
    assert_eq!(keep, synced);
    assert_eq!(e.trail()[keep..].len(), e.trail_len() - synced);
    assert!(e.trail()[keep..].contains(&lit(0, false)));
    assert!(e.trail()[keep..].contains(&lit(1, true)));
}

#[test]
fn sync_trail_watermark_survives_backjump_and_regrowth() {
    let mut e = Engine::new(6);
    let obs = e.register_trail_observer();
    // Observer synced at depth 3; engine backjumps to depth 1 and grows a
    // different branch: keep must be the low watermark, not the mark.
    e.decide(lit(0, true));
    e.decide(lit(1, true));
    e.decide(lit(2, true));
    let mark = e.trail_len();
    assert_eq!(e.sync_trail(obs, 0), 0); // observer now mirrors 3 literals
    e.backjump_to(1); // lose x2, x3
    e.decide(lit(3, false));
    e.decide(lit(4, false));
    let keep = e.sync_trail(obs, mark);
    assert_eq!(keep, 1, "only the level-1 prefix survived");
    let replay: Vec<Lit> = e.trail()[keep..].to_vec();
    assert_eq!(replay, vec![lit(3, false), lit(4, false)]);
}

#[test]
fn sync_trail_watermark_resets_after_ack() {
    let mut e = Engine::new(4);
    let obs = e.register_trail_observer();
    e.decide(lit(0, true));
    assert_eq!(e.sync_trail(obs, 0), 0);
    // No backjump since the ack: the whole synced prefix is still valid.
    e.decide(lit(1, true));
    assert_eq!(e.sync_trail(obs, 1), 1);
    // Backjump to root invalidates everything.
    e.backjump_to(0);
    assert_eq!(e.sync_trail(obs, 2), 0);
}

#[test]
fn trail_observers_have_independent_watermarks() {
    let mut e = Engine::new(6);
    let a = e.register_trail_observer();
    e.decide(lit(0, true));
    e.decide(lit(1, true));
    // Observer `a` acks the 2-literal trail; observer `b` registers late
    // and has seen nothing yet.
    assert_eq!(e.sync_trail(a, 0), 0);
    let b = e.register_trail_observer();
    e.decide(lit(2, true));
    // `b`'s first sync replays from scratch without disturbing `a`.
    assert_eq!(e.sync_trail(b, 0), 0);
    assert_eq!(e.sync_trail(a, 2), 2);
    // A backjump invalidates both, from their own sync points.
    e.backjump_to(1);
    e.decide(lit(3, false));
    assert_eq!(e.sync_trail(a, 3), 1);
    // `a`'s ack must not have reset `b`'s watermark.
    assert_eq!(e.sync_trail(b, 3), 1);
}

// ----------------------------------------------------------------------
// Assumption-dependency (taint) tracking
// ----------------------------------------------------------------------

use crate::clause::Taint;

/// Runs the minimal CDCL driver and returns the final engine state
/// (ignoring the model), for inspecting the learned-clause database.
fn solve_tracked(e: &mut Engine) -> Option<Vec<bool>> {
    solve(e)
}

#[test]
fn assumption_root_literal_is_kept_not_tainted() {
    // With x0 assumed at the root, deciding x1 conflicts:
    //   (~x0 \/ ~x1 \/ x2) and (~x0 \/ ~x1 \/ ~x2).
    // Instead of dropping ~x0 (false at level 0 via the assumption) and
    // tainting the clause cube-private, analysis keeps the literal: the
    // learned clause (~x0 \/ ~x1) is a pure resolvent of the two input
    // clauses, implied by the instance alone, and therefore shareable.
    let mut e = Engine::new(3);
    e.set_taint_tracking(true);
    e.add_constraint(&PbConstraint::clause([lit(0, false), lit(1, false), lit(2, true)])).unwrap();
    e.add_constraint(&PbConstraint::clause([lit(0, false), lit(1, false), lit(2, false)])).unwrap();
    e.assume_at_root(lit(0, true)).unwrap();
    assert!(e.propagate().is_none());
    e.decide(lit(1, true));
    let confl = e.propagate().expect("decision must conflict");
    match e.resolve_conflict(confl) {
        Resolution::Backjumped { learnt_id: Some(id), learnt_len, .. } => {
            assert!(
                !e.clause_taint(id).intersects(Taint::ASSUMPTION),
                "kept assumption literal must leave the clause untainted"
            );
            assert_eq!(learnt_len, 2, "clause keeps ~x0 alongside ~x1");
        }
        r => panic!("expected a learned clause, got {r:?}"),
    }
    // The kept-literal clause is globally valid and exported as such.
    assert_eq!(e.export_shareable_learnts(8, 16, 30).len(), 1);
    assert_eq!(e.export_learnts_excluding(8, 16, Taint::ASSUMPTION).len(), 1);
    let shared = &e.export_shareable_learnts(8, 16, 30)[0];
    assert!(shared.0.contains(&lit(0, false)), "~x0 must appear in the shared clause");
}

#[test]
fn kept_root_literal_budget_falls_back_to_taint() {
    // A conflict touching more assumption-falsified root literals than
    // the per-conflict keep budget (12): assume x0..x13 at the root, and
    // make deciding y conflict through all of them. The overflow is
    // dropped and tainted, so the clause stays cube-private.
    const N: usize = 14;
    let y = N;
    let z = N + 1;
    let mut e = Engine::new(N + 2);
    e.set_taint_tracking(true);
    let mut base: Vec<Lit> = (0..N).map(|i| lit(i, false)).collect();
    base.push(lit(y, false));
    let mut c1 = base.clone();
    c1.push(lit(z, true));
    let mut c2 = base;
    c2.push(lit(z, false));
    e.add_constraint(&PbConstraint::clause(c1)).unwrap();
    e.add_constraint(&PbConstraint::clause(c2)).unwrap();
    for i in 0..N {
        e.assume_at_root(lit(i, true)).unwrap();
    }
    assert!(e.propagate().is_none());
    e.decide(lit(y, true));
    let confl = e.propagate().expect("decision must conflict");
    match e.resolve_conflict(confl) {
        Resolution::Backjumped { learnt_id: Some(id), .. } => {
            assert!(
                e.clause_taint(id).intersects(Taint::ASSUMPTION),
                "past the keep budget the clause must be tainted"
            );
        }
        r => panic!("expected a learned clause, got {r:?}"),
    }
    assert!(e.export_shareable_learnts(32, 16, 30).is_empty());
}

#[test]
fn instance_only_learnt_is_untainted_and_shareable() {
    // Same clauses, but x0 is forced by a *unit instance clause* instead
    // of an assumption: the learned clause is implied by the instance
    // alone and must be NONE-tainted / shareable.
    let mut e = Engine::new(3);
    e.set_taint_tracking(true);
    e.add_constraint(&PbConstraint::clause([lit(0, true)])).unwrap();
    e.add_constraint(&PbConstraint::clause([lit(0, false), lit(1, false), lit(2, true)])).unwrap();
    e.add_constraint(&PbConstraint::clause([lit(0, false), lit(1, false), lit(2, false)])).unwrap();
    assert!(e.propagate().is_none());
    e.decide(lit(1, true));
    let confl = e.propagate().expect("decision must conflict");
    match e.resolve_conflict(confl) {
        Resolution::Backjumped { learnt_id: Some(id), .. } => {
            assert!(e.clause_taint(id).is_none());
        }
        r => panic!("expected a learned clause, got {r:?}"),
    }
    let shareable = e.export_shareable_learnts(8, 16, 30);
    assert_eq!(shareable.len(), 1);
    assert!(shareable[0].1.is_none());
}

#[test]
fn incumbent_tainted_cut_flows_into_learnts() {
    // A PB cut installed with INCUMBENT taint participates in the
    // conflict; the learned clause must inherit the bit (it is only
    // implied by instance + cost bound, not by the instance alone).
    let mut e = Engine::new(3);
    e.set_taint_tracking(true);
    e.add_constraint(&PbConstraint::clause([lit(0, true), lit(1, true), lit(2, true)])).unwrap();
    // "Cost cut": at most one of x0, x1 may be true, conditional on an
    // incumbent -> ~x0 + ~x1 >= 1 as a PB row.
    let cut = pbo_core::normalize(&[(1, lit(0, true)), (1, lit(1, true))], pbo_core::RelOp::Le, 1)
        .unwrap()
        .pop()
        .unwrap();
    // An instance clause requiring x1 under x0: deciding x0 conflicts
    // with the cut (x0 -> x1 via the clause, but the cut forbids both).
    e.add_constraint_tainted(&PbConstraint::clause([lit(0, false), lit(1, true)]), Taint::NONE)
        .unwrap();
    e.add_pb_cut_tainted(&cut, Taint::INCUMBENT).unwrap();
    e.decide(lit(0, true));
    if let Some(confl) = e.propagate() {
        if let Resolution::Backjumped { learnt_id: Some(id), .. } = e.resolve_conflict(confl) {
            assert!(e.clause_taint(id).intersects(Taint::INCUMBENT));
        }
    } else {
        panic!("expected a conflict through the tainted cut");
    }
    // INCUMBENT-tainted clauses are still exportable as shareable (the
    // caller stamps the bound), but not ASSUMPTION-excluded-filtered out.
    let shareable = e.export_shareable_learnts(8, 16, 30);
    assert_eq!(shareable.len(), 1);
    assert!(shareable[0].1.intersects(Taint::INCUMBENT));
}

#[test]
fn imported_clause_is_learnt_but_never_reexported() {
    let mut e = Engine::new(4);
    e.set_taint_tracking(true);
    e.add_constraint(&PbConstraint::clause([lit(0, true), lit(1, true)])).unwrap();
    e.add_learnt_clause(vec![lit(2, true), lit(3, true)], Taint::NONE, 2).unwrap();
    assert_eq!(e.num_learnts(), 1);
    // Plain export (used for dynamic-row promotion) sees it ...
    assert_eq!(e.export_learnts(8, 16).len(), 1);
    // ... but it is never echoed back to the pool.
    assert!(e.export_shareable_learnts(8, 16, 30).is_empty());
    // Importing a unit clause installs a root fact.
    e.add_learnt_clause(vec![lit(1, false)], Taint::NONE, 1).unwrap();
    assert!(e.assignment().is_true(lit(0, true)), "unit import must propagate");
    // Importing a clause contradicting the root assignment closes search.
    assert!(e.add_learnt_clause(vec![lit(0, false), lit(1, true)], Taint::NONE, 1).is_err());
    assert!(e.is_root_unsat());
}

#[test]
fn untainted_learnts_are_implied_by_instance_alone_randomized() {
    // The soundness contract behind cross-worker sharing: solve random
    // instances under a random root assumption with tracking on; every
    // learned clause NOT carrying the ASSUMPTION bit must hold in every
    // feasible assignment of the instance (brute force).
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x7a1a7);
    for round in 0..80 {
        let n = rng.gen_range(3..8);
        let mut b = InstanceBuilder::new();
        let vars = b.new_vars(n);
        let m = rng.gen_range(2..9);
        for _ in 0..m {
            let len = rng.gen_range(1..=3.min(n));
            let mut idxs: Vec<usize> = (0..n).collect();
            for i in 0..len {
                let j = rng.gen_range(i..n);
                idxs.swap(i, j);
            }
            let terms: Vec<(i64, Lit)> = idxs[..len]
                .iter()
                .map(|&i| (rng.gen_range(1..4), vars[i].lit(rng.gen_bool(0.5))))
                .collect();
            let max: i64 = terms.iter().map(|t| t.0).sum();
            let rhs = rng.gen_range(1..=max);
            b.add_linear(terms, pbo_core::RelOp::Ge, rhs);
        }
        let inst = b.build().unwrap();
        let mut e = Engine::new(inst.num_vars());
        e.set_taint_tracking(true);
        let mut load_ok = true;
        for c in inst.constraints() {
            if e.add_constraint(c).is_err() {
                load_ok = false;
                break;
            }
        }
        if !load_ok {
            continue;
        }
        let cube = vars[rng.gen_range(0..n)].lit(rng.gen_bool(0.5));
        if e.assume_at_root(cube).is_err() {
            continue;
        }
        let _ = solve_tracked(&mut e);
        for (lits, taint, _) in e.export_shareable_learnts(usize::MAX, usize::MAX, u32::MAX) {
            assert!(!taint.intersects(Taint::ASSUMPTION));
            for mask in 0u64..(1 << n) {
                let vals: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
                if inst.is_feasible(&vals) {
                    let sat = lits.iter().any(|&l| vals[l.var().index()] == l.is_positive());
                    assert!(
                        sat,
                        "round {round}: shared clause {lits:?} (taint {taint:?}) \
                         kills feasible assignment {vals:?} under cube {cube:?}"
                    );
                }
            }
        }
    }
}
