//! The conflict-driven search engine.
//!
//! [`Engine`] owns the assignment trail, the clause database (with
//! 2-watched-literal propagation) and the pseudo-Boolean constraints (with
//! counter/slack propagation), plus conflict analysis and VSIDS. It is the
//! substrate shared by every solver in the workspace: the bsolo-style
//! branch-and-bound drives it with *bound conflicts* injected as ad-hoc
//! conflicting clauses (sec. 4 of the paper), the linear-search baselines
//! drive it as a plain SAT engine.

use pbo_core::{Assignment, Lit, PbConstraint, PbTerm, Value, Var};

use crate::clause::{ClauseDb, ClauseId, Taint};
use crate::vsids::Vsids;

/// Trail pops between cancellation polls inside [`Engine::propagate`]:
/// frequent enough that a deadline tears a long fixpoint down promptly,
/// rare enough to keep `Instant::now` off the per-literal path.
const CANCEL_CHECK_INTERVAL: u32 = 512;

/// Stable identifier of a pseudo-Boolean constraint inside the engine.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct PbId(pub(crate) u32);

/// Handle of a registered trail observer (see
/// [`Engine::register_trail_observer`]).
///
/// Each observer mirrors a prefix of the trail and owns its own low
/// watermark, so several consumers (e.g. the incremental residual state
/// and the LP bound's variable-fixing mirror) can reconcile against the
/// same engine independently.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TrailObserver(u32);

impl PbId {
    /// Raw index value (for diagnostics).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Why a variable is assigned.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Reason {
    /// Decision or unassigned.
    None,
    /// Propagated by a clause.
    Clause(ClauseId),
    /// Propagated by a pseudo-Boolean constraint.
    Pb(PbId),
}

/// A conflict discovered by propagation or injected by the caller.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Conflict {
    /// A clause with every literal false.
    Clause(ClauseId),
    /// A pseudo-Boolean constraint whose slack went negative.
    Pb(PbId),
    /// An ad-hoc conflicting clause: every listed literal is currently
    /// false. This is how bound conflicts (`omega_bc`, sec. 4) enter the
    /// standard conflict-analysis machinery.
    AdHoc(Vec<Lit>),
}

/// Outcome of conflict resolution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Resolution {
    /// A clause was learned and the search backjumped.
    Backjumped {
        /// Decision level the search jumped back to.
        level: u32,
        /// Literal asserted by the learned clause at that level.
        asserted: Lit,
        /// Length of the learned clause.
        learnt_len: usize,
        /// Id of the learned clause (`None` for the rare case where the
        /// learned clause duplicated an existing unit).
        learnt_id: Option<ClauseId>,
    },
    /// The conflict is terminal: it holds even with no decisions, so the
    /// current formula is unsatisfiable (for an optimizer: search is
    /// exhausted).
    Unsat,
}

/// Counters describing engine effort; all fields are cumulative.
#[derive(Clone, Default, Debug)]
pub struct EngineStats {
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of literal propagations.
    pub propagations: u64,
    /// Number of conflicts resolved (logic and bound conflicts).
    pub conflicts: u64,
    /// Number of bound conflicts injected via [`Conflict::AdHoc`].
    pub adhoc_conflicts: u64,
    /// Number of learned clauses.
    pub learnt_clauses: u64,
    /// Sum of learned clause lengths.
    pub learnt_literals: u64,
    /// Number of restarts.
    pub restarts: u64,
    /// Number of learned-database reductions.
    pub db_reductions: u64,
    /// Sum over conflicts of (conflict level - backjump level); values
    /// greater than `conflicts` indicate non-chronological backtracking.
    pub backjump_levels: u64,
}

#[derive(Copy, Clone, Debug)]
struct Watcher {
    clause: ClauseId,
    blocker: Lit,
}

/// One stored PB constraint: a span into the engine's flat term arena
/// plus its counters. Keeping every constraint's terms in one contiguous
/// block (instead of a `Vec<PbTerm>` per constraint) makes the
/// implication scans of counter-based propagation a linear memory walk.
#[derive(Copy, Clone, Debug)]
struct PbData {
    /// Start of the constraint's terms in the flat arena.
    start: u32,
    /// Number of terms.
    len: u32,
    rhs: i64,
    /// Weight of non-false literals minus rhs, kept exact at all times.
    slack: i64,
    max_coeff: i64,
    active: bool,
}

#[derive(Copy, Clone, Debug)]
struct PbOcc {
    pb: u32,
    coeff: i64,
}

/// Conflict-driven engine over clauses and pseudo-Boolean constraints.
///
/// # Examples
///
/// ```
/// use pbo_core::{Lit, PbConstraint};
/// use pbo_engine::{Engine, Conflict};
///
/// let mut e = Engine::new(2);
/// e.add_constraint(&PbConstraint::clause([Lit::new(0, true), Lit::new(1, true)]))
///     .unwrap();
/// e.decide(Lit::new(0, false));
/// assert!(e.propagate().is_none());
/// assert!(e.assignment().is_true(Lit::new(1, true))); // propagated
/// ```
#[derive(Debug)]
pub struct Engine {
    num_vars: usize,
    assignment: Assignment,
    level: Vec<u32>,
    reason: Vec<Reason>,
    trail_pos: Vec<usize>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    clauses: ClauseDb,
    watches: Vec<Vec<Watcher>>,
    pbs: Vec<PbData>,
    /// Flat term arena backing every stored PB constraint (spans in
    /// [`PbData`]); append-only, so spans stay valid as cuts arrive.
    pb_terms: Vec<PbTerm>,
    pb_occur: Vec<Vec<PbOcc>>,
    /// Reusable scratch for implied-literal collection during PB
    /// propagation (no per-propagation allocation).
    implied_buf: Vec<Lit>,
    /// Reusable scratch of decision-level stamps for LBD computation.
    lbd_seen: Vec<u32>,
    /// Epoch for `lbd_seen`.
    lbd_epoch: u32,
    vsids: Vsids,
    phase: Vec<bool>,
    seen: Vec<bool>,
    root_unsat: bool,
    /// Assumption-dependency tracking (off by default; a parallel worker
    /// that wants to share learned clauses turns it on). When on, every
    /// assignment records the union of taints of the constraints its
    /// derivation used, and every learned clause is stamped with the
    /// taint of its resolution proof.
    track_taint: bool,
    /// Per-variable derivation taint of the *current* assignment
    /// (overwritten on every enqueue; meaningless for unassigned vars).
    var_taint: Vec<Taint>,
    /// Per-PB-constraint taint, parallel to `pbs`.
    pb_taint: Vec<Taint>,
    /// Per-observer low watermark: the lowest trail length reached since
    /// that observer's last [`Engine::sync_trail`] call — its
    /// reconciliation point. Indexed by [`TrailObserver`].
    trail_low: Vec<usize>,
    /// Telemetry sink; [`pbo_trace::Tracer::off`] by default, so the
    /// emission sites below cost one branch when tracing is disabled.
    tracer: pbo_trace::Tracer,
    /// Cooperative cancellation, polled inside the propagation loop (see
    /// [`Engine::set_cancel`]); `None` costs one branch per fixpoint.
    cancel: Option<pbo_core::CancelToken>,
    /// Literals popped since the last cancellation poll.
    cancel_clock: u32,
    /// Stats are public for cheap read access by solvers.
    pub stats: EngineStats,
}

/// Error returned when adding a constraint makes the formula unsatisfiable
/// at the root level.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RootConflict;

impl std::fmt::Display for RootConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "formula is unsatisfiable at the root level")
    }
}

impl std::error::Error for RootConflict {}

impl Engine {
    /// Creates an engine over `num_vars` variables with no constraints.
    pub fn new(num_vars: usize) -> Engine {
        Engine {
            num_vars,
            assignment: Assignment::new(num_vars),
            level: vec![0; num_vars],
            reason: vec![Reason::None; num_vars],
            trail_pos: vec![0; num_vars],
            trail: Vec::with_capacity(num_vars),
            trail_lim: Vec::new(),
            qhead: 0,
            clauses: ClauseDb::new(),
            watches: vec![Vec::new(); 2 * num_vars],
            pbs: Vec::new(),
            pb_terms: Vec::new(),
            pb_occur: vec![Vec::new(); 2 * num_vars],
            implied_buf: Vec::new(),
            lbd_seen: vec![0; num_vars + 1],
            lbd_epoch: 0,
            vsids: Vsids::new(num_vars, 0.95),
            phase: vec![false; num_vars],
            seen: vec![false; num_vars],
            root_unsat: false,
            track_taint: false,
            var_taint: vec![Taint::NONE; num_vars],
            pb_taint: Vec::new(),
            trail_low: Vec::new(),
            tracer: pbo_trace::Tracer::off(),
            cancel: None,
            cancel_clock: 0,
            stats: EngineStats::default(),
        }
    }

    /// Installs a telemetry tracer. Events are emitted at the exact
    /// sites that increment [`EngineStats`], so traced event counts
    /// reconcile with the counters.
    pub fn set_tracer(&mut self, tracer: pbo_trace::Tracer) {
        self.tracer = tracer;
    }

    /// Installs a cooperative cancellation token. [`Engine::propagate`]
    /// polls it every [`CANCEL_CHECK_INTERVAL`] trail pops and, once it
    /// trips, stops propagating (conflict-free) — sound, because a
    /// partial fixpoint claims nothing: the caller observes the token at
    /// its own poll sites and never uses the truncated propagation to
    /// close a subtree.
    pub fn set_cancel(&mut self, cancel: pbo_core::CancelToken) {
        self.cancel = Some(cancel);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Current decision level (0 = root).
    #[inline]
    pub fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// The current partial assignment.
    #[inline]
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Decision level at which `var` was assigned (meaningless if
    /// unassigned).
    #[inline]
    pub fn level_of(&self, var: Var) -> u32 {
        self.level[var.index()]
    }

    /// Reason recorded for `var`'s assignment.
    #[inline]
    pub fn reason_of(&self, var: Var) -> Reason {
        self.reason[var.index()]
    }

    /// The assignment trail in chronological order.
    pub fn trail(&self) -> &[Lit] {
        &self.trail
    }

    /// Current trail length (the mark used by [`Engine::sync_trail`]).
    #[inline]
    pub fn trail_len(&self) -> usize {
        self.trail.len()
    }

    /// Registers a new trail observer and returns its handle.
    ///
    /// An observer mirrors a prefix of the trail (initially the empty
    /// prefix) and reconciles with [`Engine::sync_trail`]. Each observer
    /// carries its own low watermark, so any number of independent
    /// consumers — the incremental residual state, the LP bound's
    /// variable-fixing mirror, future incremental analyses — can track
    /// the same engine in O(Δ) each.
    pub fn register_trail_observer(&mut self) -> TrailObserver {
        let id = TrailObserver(self.trail_low.len() as u32);
        // A fresh observer has seen nothing, so its first sync passes
        // `synced_len == 0` and `keep` is 0 regardless of the watermark;
        // starting at the current trail length keeps the invariant
        // "lowest length reached since last sync".
        self.trail_low.push(self.trail.len());
        id
    }

    /// Reconciles the registered trail observer `obs` (e.g. the residual
    /// state maintained by a lower-bound procedure) in O(Δ) instead of
    /// O(trail).
    ///
    /// The observer mirrors a prefix of the trail: it last saw
    /// `synced_len` literals. Because backjumping only ever *truncates*
    /// the trail and assignment only *appends*, the trail the observer
    /// saw and the current trail share a prefix of length at least
    /// `min(synced_len, low)`, where `low` is the lowest trail length
    /// reached since the observer last synced. This method returns that
    /// `keep` point; the contract is that the caller immediately
    ///
    /// 1. unwinds its mirrored state down to `keep` literals, then
    /// 2. replays `self.trail()[keep..]`,
    ///
    /// after which the observer is exactly in sync. Only `obs`'s
    /// watermark is reset; other observers are unaffected.
    pub fn sync_trail(&mut self, obs: TrailObserver, synced_len: usize) -> usize {
        let low = &mut self.trail_low[obs.0 as usize];
        let keep = synced_len.min(*low);
        *low = self.trail.len();
        keep
    }

    /// Returns `true` if a root-level conflict has been derived: no
    /// assignment can satisfy the stored constraints.
    pub fn is_root_unsat(&self) -> bool {
        self.root_unsat
    }

    /// Turns assumption-dependency tracking on or off (see [`Taint`]).
    ///
    /// Enable it *before* the first [`Engine::assume_at_root`] or
    /// tainted constraint; everything assigned earlier is treated as
    /// implied by the instance alone (correct for constraints loaded
    /// from the instance and for probing-derived facts). When off — the
    /// default — the tracking adds no work to the hot paths and every
    /// clause reports [`Taint::NONE`].
    pub fn set_taint_tracking(&mut self, on: bool) {
        self.track_taint = on;
    }

    /// Whether assumption-dependency tracking is on.
    pub fn taint_tracking(&self) -> bool {
        self.track_taint
    }

    /// The recorded provenance of a clause (see [`Taint`]) — for tests
    /// and diagnostics of the sharing layer.
    ///
    /// # Panics
    ///
    /// Panics if the clause was removed.
    pub fn clause_taint(&self, id: ClauseId) -> Taint {
        self.clauses.get(id).taint()
    }

    /// Saved phase (preferred polarity) of a variable.
    pub fn phase_of(&self, var: Var) -> bool {
        self.phase[var.index()]
    }

    /// Overrides the saved phase of a variable.
    pub fn set_phase(&mut self, var: Var, value: bool) {
        self.phase[var.index()] = value;
    }

    /// Bumps the VSIDS activity of a variable (used by solvers to inform
    /// branching, e.g. from LP fractionality).
    pub fn bump_var(&mut self, var: Var) {
        self.vsids.bump(var);
    }

    /// Extracts the complete model as booleans.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is not complete.
    pub fn model(&self) -> Vec<bool> {
        assert!(self.assignment.is_complete(), "model requested before assignment complete");
        self.assignment.to_bools_lossy()
    }

    // ------------------------------------------------------------------
    // Constraint loading
    // ------------------------------------------------------------------

    /// Adds a normalized constraint, dispatching clauses to the watched
    /// database and everything else to the counter-based PB store. Must be
    /// called at decision level 0.
    ///
    /// # Errors
    ///
    /// Returns [`RootConflict`] if the constraint (together with earlier
    /// root propagations) is contradictory.
    ///
    /// # Panics
    ///
    /// Panics if called above decision level 0 (PB slack bookkeeping is
    /// only stable for constraints added at the root; backjump to level 0
    /// first — see `DESIGN.md`).
    pub fn add_constraint(&mut self, c: &PbConstraint) -> Result<(), RootConflict> {
        self.add_constraint_tainted(c, Taint::NONE)
    }

    /// [`Engine::add_constraint`] with an explicit derivation taint:
    /// `taint` records what, beyond the instance, implies `c` (e.g.
    /// [`Taint::INCUMBENT`] for a clause implied by instance + cost cut).
    /// The taint flows into every propagation and learned clause that
    /// uses the constraint when tracking is on.
    ///
    /// # Errors
    ///
    /// Returns [`RootConflict`] if the constraint (together with earlier
    /// root propagations) is contradictory.
    pub fn add_constraint_tainted(
        &mut self,
        c: &PbConstraint,
        taint: Taint,
    ) -> Result<(), RootConflict> {
        assert_eq!(self.decision_level(), 0, "constraints must be added at level 0");
        if self.root_unsat {
            return Err(RootConflict);
        }
        if c.is_unsatisfiable() {
            self.root_unsat = true;
            return Err(RootConflict);
        }
        let result = if c.class() == pbo_core::ConstraintClass::Clause {
            self.add_root_clause(c.terms().iter().map(|t| t.lit).collect(), taint, false, 0)
        } else {
            self.add_root_pb(c, taint)
        };
        if result.is_err() {
            self.root_unsat = true;
        }
        result
    }

    /// Installs an externally learned clause (e.g. from the parallel
    /// shared-clause pool) at the root: simplified against the root
    /// assignment, stored as a *learnt* clause with the given LBD — so
    /// it competes in LBD-best exports and dynamic-row promotion like a
    /// locally learned clause — and stamped `taint | `[`Taint::IMPORTED`]
    /// (imported clauses are already global and are never re-exported by
    /// [`Engine::export_shareable_learnts`]).
    ///
    /// # Errors
    ///
    /// Returns [`RootConflict`] if the clause is contradictory with the
    /// root assignment (for a cube worker under cost cuts: the subtree
    /// holds nothing better than the incumbent — search exhausted).
    ///
    /// # Panics
    ///
    /// Panics if called above decision level 0.
    pub fn add_learnt_clause(
        &mut self,
        lits: Vec<Lit>,
        taint: Taint,
        lbd: u32,
    ) -> Result<(), RootConflict> {
        assert_eq!(self.decision_level(), 0, "learnt clauses must be imported at level 0");
        if self.root_unsat {
            return Err(RootConflict);
        }
        let result = self.add_root_clause(lits, taint | Taint::IMPORTED, true, lbd);
        if result.is_err() {
            self.root_unsat = true;
        }
        result
    }

    fn add_root_clause(
        &mut self,
        mut lits: Vec<Lit>,
        mut taint: Taint,
        learnt: bool,
        lbd: u32,
    ) -> Result<(), RootConflict> {
        // Root-level simplification. A literal dropped because it is
        // false at level 0 makes the simplified clause depend on that
        // literal's derivation: fold its taint in.
        if self.track_taint {
            for &l in &lits {
                if self.assignment.is_false(l) && self.level[l.var().index()] == 0 {
                    taint |= self.var_taint[l.var().index()];
                }
            }
        }
        lits.retain(|&l| !self.assignment.is_false(l) || self.level[l.var().index()] != 0);
        if lits.iter().any(|&l| self.assignment.is_true(l) && self.level[l.var().index()] == 0) {
            return Ok(());
        }
        lits.sort();
        lits.dedup();
        if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
            return Ok(()); // tautology: l and ~l both present
        }
        match lits.len() {
            0 => Err(RootConflict),
            1 => {
                let lit = lits[0];
                if !self.enqueue(lit, Reason::None) {
                    return Err(RootConflict);
                }
                if self.track_taint {
                    // The unit fact inherits the clause's taint (enqueue
                    // recorded NONE for the reasonless assignment); set it
                    // before propagating so downstream taints see it.
                    self.var_taint[lit.var().index()] = taint;
                }
                if self.propagate().is_some() {
                    return Err(RootConflict);
                }
                Ok(())
            }
            _ => {
                let id = self.clauses.insert(lits, learnt);
                if learnt {
                    self.clauses.set_lbd(id, lbd);
                }
                if self.track_taint {
                    self.clauses.set_taint(id, taint);
                }
                self.attach_clause(id);
                Ok(())
            }
        }
    }

    fn add_root_pb(&mut self, c: &PbConstraint, taint: Taint) -> Result<(), RootConflict> {
        let id = PbId(self.pbs.len() as u32);
        let max_coeff = c.terms().iter().map(|t| t.coeff).max().unwrap_or(0);
        let slack = c.slack(&self.assignment);
        let start = self.pb_terms.len() as u32;
        self.pb_terms.extend_from_slice(c.terms());
        let data =
            PbData { start, len: c.len() as u32, rhs: c.rhs(), slack, max_coeff, active: true };
        for t in c.terms() {
            self.pb_occur[t.lit.code()].push(PbOcc { pb: id.0, coeff: t.coeff });
        }
        self.pbs.push(data);
        self.pb_taint.push(taint);
        if slack < 0 {
            return Err(RootConflict);
        }
        // Root-level implied literals.
        if slack < max_coeff {
            let mut implied = std::mem::take(&mut self.implied_buf);
            implied.clear();
            implied.extend(
                self.pb_term_slice(id.0)
                    .iter()
                    .filter(|t| t.coeff > slack && self.assignment.is_unassigned(t.lit))
                    .map(|t| t.lit),
            );
            for i in 0..implied.len() {
                if !self.enqueue(implied[i], Reason::Pb(id)) {
                    self.implied_buf = implied;
                    return Err(RootConflict);
                }
            }
            self.implied_buf = implied;
            if self.propagate().is_some() {
                return Err(RootConflict);
            }
        }
        Ok(())
    }

    /// The flat-arena term span of a stored PB constraint.
    #[inline]
    fn pb_term_slice(&self, pb: u32) -> &[PbTerm] {
        let d = &self.pbs[pb as usize];
        &self.pb_terms[d.start as usize..(d.start + d.len) as usize]
    }

    /// Deactivates a previously added PB constraint (used to drop
    /// superseded upper-bound cuts). The constraint stops participating in
    /// propagation; its slack bookkeeping continues harmlessly.
    pub fn deactivate_pb(&mut self, id: PbId) {
        self.pbs[id.0 as usize].active = false;
    }

    /// The terms of a stored PB constraint (for diagnostics and
    /// cutting-plane-style analyses layered on top of the engine).
    pub fn pb_terms(&self, id: PbId) -> &[PbTerm] {
        self.pb_term_slice(id.0)
    }

    /// The right-hand side of a stored PB constraint.
    pub fn pb_rhs(&self, id: PbId) -> i64 {
        self.pbs[id.0 as usize].rhs
    }

    /// The current slack of a stored PB constraint (non-false weight
    /// minus right-hand side under the current assignment).
    pub fn pb_slack(&self, id: PbId) -> i64 {
        self.pbs[id.0 as usize].slack
    }

    /// Assumes `lit` at the root: the literal becomes a level-0 fact, so
    /// conflict analysis never flips it and [`Resolution::Unsat`] means
    /// "unsatisfiable *under the assumptions*". This is how a
    /// cube-and-conquer worker roots itself in its assigned subtree: the
    /// cube's decision literals are assumed one by one onto a fresh
    /// engine, and everything the worker learns afterwards is implied by
    /// *instance ∧ cube* (valid within the subtree, private to the
    /// worker). Must be called at decision level 0.
    ///
    /// # Errors
    ///
    /// Returns [`RootConflict`] if the literal contradicts the root
    /// assignment (the cube is closed by propagation alone).
    pub fn assume_at_root(&mut self, lit: Lit) -> Result<(), RootConflict> {
        assert_eq!(self.decision_level(), 0, "assumptions must be made at level 0");
        if self.root_unsat {
            return Err(RootConflict);
        }
        match self.assignment.lit_value(lit) {
            Value::True => Ok(()),
            Value::False => {
                self.root_unsat = true;
                Err(RootConflict)
            }
            Value::Unassigned => {
                let ok = self.enqueue(lit, Reason::None);
                debug_assert!(ok);
                if self.track_taint {
                    // Everything derived from this fact depends on the
                    // cube; mark before propagating so the taint flows.
                    self.var_taint[lit.var().index()] = Taint::ASSUMPTION;
                }
                if self.propagate().is_some() {
                    self.root_unsat = true;
                    return Err(RootConflict);
                }
                Ok(())
            }
        }
    }

    /// Adds the normalized upper-bound ("knapsack", eq. 10) cut and
    /// returns its id so it can be deactivated when superseded. Must be
    /// called at level 0.
    ///
    /// # Errors
    ///
    /// Returns [`RootConflict`] if the cut is contradictory with the root
    /// assignment — meaning no solution better than the bound exists.
    pub fn add_pb_cut(&mut self, c: &PbConstraint) -> Result<PbId, RootConflict> {
        self.add_pb_cut_tainted(c, Taint::NONE)
    }

    /// [`Engine::add_pb_cut`] with an explicit derivation taint — cost
    /// cuts installed after an incumbent carry [`Taint::INCUMBENT`] so
    /// that clauses learned through them are not exported as
    /// instance-implied.
    ///
    /// # Errors
    ///
    /// Returns [`RootConflict`] if the cut is contradictory with the root
    /// assignment — meaning no solution better than the bound exists.
    pub fn add_pb_cut_tainted(
        &mut self,
        c: &PbConstraint,
        taint: Taint,
    ) -> Result<PbId, RootConflict> {
        assert_eq!(self.decision_level(), 0, "cuts must be added at level 0");
        if c.is_unsatisfiable() {
            self.root_unsat = true;
            return Err(RootConflict);
        }
        let id = PbId(self.pbs.len() as u32);
        self.add_root_pb(c, taint).map(|()| id).inspect_err(|_| {
            self.root_unsat = true;
        })
    }

    fn attach_clause(&mut self, id: ClauseId) {
        let (w0, w1, blocker0, blocker1) = {
            let c = self.clauses.get(id);
            debug_assert!(c.len() >= 2);
            (c.lits()[0], c.lits()[1], c.lits()[1], c.lits()[0])
        };
        // `watches[l.code()]` holds the clauses watching literal `l`; the
        // list is visited when `l` becomes false.
        self.watches[w0.code()].push(Watcher { clause: id, blocker: blocker0 });
        self.watches[w1.code()].push(Watcher { clause: id, blocker: blocker1 });
    }

    fn detach_clause(&mut self, id: ClauseId) {
        let (w0, w1) = {
            let c = self.clauses.get(id);
            (c.lits()[0], c.lits()[1])
        };
        self.watches[w0.code()].retain(|w| w.clause != id);
        self.watches[w1.code()].retain(|w| w.clause != id);
    }

    // ------------------------------------------------------------------
    // Assignment control
    // ------------------------------------------------------------------

    /// Enqueues a literal with a reason. Returns `false` if the literal is
    /// already false (caller must treat this as a conflict on the reason
    /// constraint).
    pub fn enqueue(&mut self, lit: Lit, reason: Reason) -> bool {
        match self.assignment.lit_value(lit) {
            Value::True => true,
            Value::False => false,
            Value::Unassigned => {
                let vi = lit.var().index();
                if self.track_taint {
                    // Overwrite (not OR): the variable's previous taint
                    // belongs to an unwound assignment. Overwrite-on-assign
                    // means backjumps need no taint cleanup.
                    self.var_taint[vi] = self.reason_taint(lit, reason);
                }
                self.assignment.assign_lit(lit);
                self.level[vi] = self.decision_level();
                self.reason[vi] = reason;
                self.trail_pos[vi] = self.trail.len();
                self.trail.push(lit);
                self.stats.propagations += 1;
                // Falsifying ~lit shrinks the slack of every PB constraint
                // that contains ~lit.
                let code = (!lit).code();
                for k in 0..self.pb_occur[code].len() {
                    let occ = self.pb_occur[code][k];
                    self.pbs[occ.pb as usize].slack -= occ.coeff;
                }
                true
            }
        }
    }

    /// The taint an assignment inherits from its reason constraint: the
    /// constraint's own taint joined with the taints of the other
    /// (currently false) literals forcing the propagation. Decisions and
    /// root facts default to [`Taint::NONE`]; callers installing tainted
    /// root facts (assumptions, unit clauses) overwrite afterwards.
    fn reason_taint(&self, lit: Lit, reason: Reason) -> Taint {
        match reason {
            Reason::None => Taint::NONE,
            Reason::Clause(id) => {
                let c = self.clauses.get(id);
                let mut t = c.taint();
                for &l in c.lits() {
                    if l != lit {
                        t |= self.var_taint[l.var().index()];
                    }
                }
                t
            }
            Reason::Pb(id) => {
                let mut t = self.pb_taint[id.0 as usize];
                for k in 0..self.pbs[id.0 as usize].len as usize {
                    let term = self.pb_terms[self.pbs[id.0 as usize].start as usize + k];
                    if term.lit != lit && self.assignment.is_false(term.lit) {
                        t |= self.var_taint[term.lit.var().index()];
                    }
                }
                t
            }
        }
    }

    /// Starts a new decision level and assigns `lit`.
    ///
    /// # Panics
    ///
    /// Panics if `lit`'s variable is already assigned.
    pub fn decide(&mut self, lit: Lit) {
        assert!(self.assignment.is_unassigned(lit), "deciding an assigned literal");
        self.trail_lim.push(self.trail.len());
        self.stats.decisions += 1;
        self.tracer.emit(pbo_trace::TraceEvent::Decision);
        let ok = self.enqueue(lit, Reason::None);
        debug_assert!(ok);
    }

    /// Undoes all assignments above `target_level`.
    pub fn backjump_to(&mut self, target_level: u32) {
        if self.decision_level() <= target_level {
            return;
        }
        let new_len = self.trail_lim[target_level as usize];
        for i in (new_len..self.trail.len()).rev() {
            let lit = self.trail[i];
            let vi = lit.var().index();
            // Restore PB slacks (mirror of enqueue).
            let code = (!lit).code();
            for k in 0..self.pb_occur[code].len() {
                let occ = self.pb_occur[code][k];
                self.pbs[occ.pb as usize].slack += occ.coeff;
            }
            self.phase[vi] = lit.is_positive();
            self.assignment.unassign(lit.var());
            self.reason[vi] = Reason::None;
            self.vsids.insert(lit.var());
        }
        self.trail.truncate(new_len);
        self.trail_lim.truncate(target_level as usize);
        self.qhead = self.trail.len();
        for low in &mut self.trail_low {
            *low = (*low).min(new_len);
        }
    }

    /// Restarts the search (backjump to the root, keep learned clauses).
    pub fn restart(&mut self) {
        self.stats.restarts += 1;
        self.tracer.emit(pbo_trace::TraceEvent::Restart);
        self.backjump_to(0);
    }

    /// Picks the unassigned variable with the highest VSIDS activity, or
    /// `None` if every variable is assigned.
    pub fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.vsids.pop_max() {
            if self.assignment.value(v) == Value::Unassigned {
                return Some(v);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Propagation
    // ------------------------------------------------------------------

    /// Propagates to fixpoint. Returns the conflict if one is found.
    ///
    /// With a cancellation token installed ([`Engine::set_cancel`]) a
    /// tripped token ends the fixpoint early with no conflict; the
    /// unprocessed queue suffix stays on the trail and would be
    /// propagated by the next call.
    pub fn propagate(&mut self) -> Option<Conflict> {
        while self.qhead < self.trail.len() {
            if let Some(cancel) = &self.cancel {
                self.cancel_clock += 1;
                if self.cancel_clock >= CANCEL_CHECK_INTERVAL {
                    self.cancel_clock = 0;
                    if cancel.is_cancelled() {
                        return None;
                    }
                }
            }
            let p = self.trail[self.qhead];
            self.qhead += 1;
            if let Some(confl) = self.propagate_clauses(p) {
                self.qhead = self.trail.len();
                return Some(confl);
            }
            if let Some(confl) = self.propagate_pbs(p) {
                self.qhead = self.trail.len();
                return Some(confl);
            }
        }
        None
    }

    /// Standard two-watched-literal scheme over the clause database.
    fn propagate_clauses(&mut self, p: Lit) -> Option<Conflict> {
        let false_lit = !p;
        let code = false_lit.code();
        let mut ws = std::mem::take(&mut self.watches[code]);
        let mut i = 0;
        let mut j = 0;
        let mut conflict = None;
        'watchers: while i < ws.len() {
            let w = ws[i];
            i += 1;
            if self.assignment.is_true(w.blocker) {
                ws[j] = w;
                j += 1;
                continue;
            }
            let cid = w.clause;
            // Normalize so lits[1] is the falsified watch.
            let first = {
                let c = self.clauses.get_mut(cid);
                let lits = c.lits_mut();
                if lits[0] == false_lit {
                    lits.swap(0, 1);
                }
                lits[0]
            };
            if first != w.blocker && self.assignment.is_true(first) {
                ws[j] = Watcher { clause: cid, blocker: first };
                j += 1;
                continue;
            }
            // Look for a new watch.
            let len = self.clauses.get(cid).len();
            for k in 2..len {
                let lk = self.clauses.get(cid).lits()[k];
                if self.assignment.lit_value(lk) != Value::False {
                    let c = self.clauses.get_mut(cid);
                    c.lits_mut().swap(1, k);
                    self.watches[lk.code()].push(Watcher { clause: cid, blocker: first });
                    continue 'watchers;
                }
            }
            // No new watch: clause is unit or conflicting.
            ws[j] = Watcher { clause: cid, blocker: first };
            j += 1;
            if !self.enqueue(first, Reason::Clause(cid)) {
                // Conflict: keep remaining watchers.
                while i < ws.len() {
                    ws[j] = ws[i];
                    j += 1;
                    i += 1;
                }
                conflict = Some(Conflict::Clause(cid));
                break;
            }
        }
        ws.truncate(j);
        self.watches[code] = ws;
        conflict
    }

    /// Counter-based propagation for PB constraints containing `!p`.
    fn propagate_pbs(&mut self, p: Lit) -> Option<Conflict> {
        let code = (!p).code();
        for k in 0..self.pb_occur[code].len() {
            let occ = self.pb_occur[code][k];
            let pb_idx = occ.pb as usize;
            if !self.pbs[pb_idx].active {
                continue;
            }
            let slack = self.pbs[pb_idx].slack;
            if slack < 0 {
                return Some(Conflict::Pb(PbId(occ.pb)));
            }
            if slack < self.pbs[pb_idx].max_coeff {
                // Every unassigned literal with coeff > slack is forced.
                let mut implied = std::mem::take(&mut self.implied_buf);
                implied.clear();
                implied.extend(
                    self.pb_term_slice(occ.pb)
                        .iter()
                        .filter(|t| t.coeff > slack && self.assignment.is_unassigned(t.lit))
                        .map(|t| t.lit),
                );
                for &l in &implied {
                    let ok = self.enqueue(l, Reason::Pb(PbId(occ.pb)));
                    debug_assert!(ok, "implied literal cannot be false");
                }
                self.implied_buf = implied;
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Conflict analysis (first-UIP)
    // ------------------------------------------------------------------

    /// Literals of the conflicting constraint, all currently false.
    fn conflict_literals(&self, conflict: &Conflict) -> Vec<Lit> {
        match conflict {
            Conflict::Clause(id) => self.clauses.get(*id).lits().to_vec(),
            Conflict::Pb(id) => self
                .pb_term_slice(id.0)
                .iter()
                .map(|t| t.lit)
                .filter(|&l| self.assignment.is_false(l))
                .collect(),
            Conflict::AdHoc(lits) => lits.clone(),
        }
    }

    /// The literals that implied `p` (all currently false), given its
    /// recorded reason.
    fn reason_literals(&self, p: Lit) -> Vec<Lit> {
        match self.reason[p.var().index()] {
            Reason::None => Vec::new(),
            Reason::Clause(id) => {
                self.clauses.get(id).lits().iter().copied().filter(|&l| l != p).collect()
            }
            Reason::Pb(id) => {
                let p_pos = self.trail_pos[p.var().index()];
                self.pb_term_slice(id.0)
                    .iter()
                    .map(|t| t.lit)
                    .filter(|&l| {
                        self.assignment.is_false(l) && self.trail_pos[l.var().index()] < p_pos
                    })
                    .collect()
            }
        }
    }

    /// Resolves a conflict: learns a first-UIP clause, backjumps and
    /// asserts its head literal. Handles conflicts whose literals live
    /// below the current decision level (bound conflicts) by first
    /// backtracking to the highest involved level.
    pub fn resolve_conflict(&mut self, conflict: Conflict) -> Resolution {
        self.resolve_conflict_tainted(conflict, Taint::NONE)
    }

    /// [`Engine::resolve_conflict`] with an explicit *extra* taint folded
    /// into the learned clause's provenance — used by the bounding layer
    /// for [`Conflict::AdHoc`] bound conflicts, whose derivation (the
    /// lower-bound argument against the incumbent) lives outside the
    /// engine: pass [`Taint::INCUMBENT`] when an upper bound was in play.
    ///
    /// When taint tracking is on, the learned clause's taint is the join
    /// of: `extra`, the conflicting constraint's taint, the taints of
    /// every reason constraint resolved on during the first-UIP walk,
    /// and the taints of literals dropped because they are false at
    /// level 0 (this last is the MiniSat-`analyzeFinal` step that makes
    /// cube-assumption dependencies visible). Root-false literals whose
    /// provenance includes [`Taint::ASSUMPTION`] are *kept* in the clause
    /// (up to a small budget) rather than dropped: dropping them is a
    /// strengthening step outside the resolution chain, so skipping it is
    /// sound, and the longer clause stays implied without the cube — the
    /// difference between a worker-private and a shareable clause.
    pub fn resolve_conflict_tainted(&mut self, conflict: Conflict, extra: Taint) -> Resolution {
        /// Per-conflict budget of assumption-dependent root-false
        /// literals kept in the learned clause; beyond it the remainder
        /// is dropped and tainted as before, bounding clause growth in
        /// deep cubes.
        const MAX_KEPT_ROOT_LITS: usize = 12;
        self.stats.conflicts += 1;
        self.tracer.emit(pbo_trace::TraceEvent::Conflict);
        let mut taint = extra;
        if self.track_taint {
            taint |= match &conflict {
                Conflict::Clause(id) => self.clauses.get(*id).taint(),
                Conflict::Pb(id) => self.pb_taint[id.0 as usize],
                Conflict::AdHoc(_) => Taint::NONE,
            };
        }
        if matches!(conflict, Conflict::AdHoc(_)) {
            self.stats.adhoc_conflicts += 1;
        }
        if let Conflict::Clause(id) = conflict {
            self.clauses.bump_activity(id);
        }
        let conflict_lits = self.conflict_literals(&conflict);
        debug_assert!(
            conflict_lits.iter().all(|&l| self.assignment.is_false(l)),
            "conflict literals must all be false"
        );
        let max_level =
            conflict_lits.iter().map(|&l| self.level[l.var().index()]).max().unwrap_or(0);
        if max_level == 0 {
            self.root_unsat = true;
            return Resolution::Unsat;
        }
        let entry_level = self.decision_level();
        // A bound conflict may not involve the deepest decisions; drop to
        // the highest level that matters before the UIP walk. All conflict
        // literals stay false.
        if max_level < entry_level {
            self.backjump_to(max_level);
        }
        let current = self.decision_level();

        let mut learnt: Vec<Lit> = vec![Lit::new(0, true)]; // placeholder head
        let mut path_count: u32 = 0;
        let mut index = self.trail.len();
        let mut to_clear: Vec<Var> = Vec::new();
        let mut kept_root = 0usize;

        let mut pending: Vec<Lit> = conflict_lits;
        let asserted;
        loop {
            for &q in &pending {
                let v = q.var();
                let lvl = self.level[v.index()];
                if !self.seen[v.index()] && lvl > 0 {
                    self.seen[v.index()] = true;
                    to_clear.push(v);
                    self.vsids.bump(v);
                    if lvl >= current {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                } else if lvl == 0 && self.track_taint && !self.seen[v.index()] {
                    let t = self.var_taint[v.index()];
                    if t.intersects(Taint::ASSUMPTION) && kept_root < MAX_KEPT_ROOT_LITS {
                        // MiniSat-`analyzeFinal` style: *keep* the
                        // root-false literal instead of strengthening the
                        // clause with the assumption-derived fact that
                        // falsified it. One literal longer, but the
                        // clause no longer depends on the cube — the
                        // difference between a worker-private clause and
                        // a globally shareable one. (Dropping it is an
                        // extra strengthening step, not part of the
                        // resolution chain, so skipping it is sound.)
                        self.seen[v.index()] = true;
                        to_clear.push(v);
                        learnt.push(q);
                        kept_root += 1;
                    } else {
                        // The literal is silently dropped because it is
                        // false at the root — the learned clause depends
                        // on whatever made it false there (assumptions
                        // past the keep budget, imported facts, …).
                        taint |= t;
                    }
                }
            }
            // Next trail literal involved in the conflict.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let p = self.trail[index];
            self.seen[p.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                asserted = !p;
                break;
            }
            pending = self.reason_literals(p);
            if self.track_taint {
                taint |= match self.reason[p.var().index()] {
                    Reason::Clause(id) => self.clauses.get(id).taint(),
                    Reason::Pb(id) => self.pb_taint[id.0 as usize],
                    Reason::None => Taint::NONE,
                };
            }
            if let Reason::Clause(id) = self.reason[p.var().index()] {
                self.clauses.bump_activity(id);
            }
        }
        learnt[0] = asserted;
        for v in to_clear {
            self.seen[v.index()] = false;
        }
        // LBD at learn time: distinct decision levels among the learned
        // literals (computed before backjumping, like Glucose does).
        let lbd = self.compute_lbd(&learnt);

        // Backjump level: highest level among the tail literals.
        let backjump_level = if learnt.len() == 1 {
            0
        } else {
            let (best_idx, best_level) = learnt[1..]
                .iter()
                .enumerate()
                .map(|(i, &l)| (i + 1, self.level[l.var().index()]))
                .max_by_key(|&(_, lvl)| lvl)
                .expect("non-empty tail");
            learnt.swap(1, best_idx);
            best_level
        };
        self.stats.backjump_levels += (current - backjump_level) as u64;
        self.backjump_to(backjump_level);

        self.stats.learnt_clauses += 1;
        self.stats.learnt_literals += learnt.len() as u64;
        let learnt_len = learnt.len();
        let (learnt_id, ok) = if learnt_len == 1 {
            let id = self.clauses.insert(learnt.clone(), true);
            self.clauses.set_lbd(id, lbd);
            if self.track_taint {
                self.clauses.set_taint(id, taint);
            }
            (Some(id), self.enqueue(learnt[0], Reason::Clause(id)))
        } else {
            let id = self.clauses.insert(learnt.clone(), true);
            self.clauses.set_lbd(id, lbd);
            if self.track_taint {
                self.clauses.set_taint(id, taint);
            }
            self.attach_clause(id);
            self.clauses.bump_activity(id);
            (Some(id), self.enqueue(learnt[0], Reason::Clause(id)))
        };
        debug_assert!(ok, "asserted literal must be enqueuable after backjump");
        self.vsids.decay();
        self.clauses.decay_activity();
        Resolution::Backjumped { level: backjump_level, asserted, learnt_len, learnt_id }
    }

    /// Number of distinct decision levels among `lits` (the literal
    /// block distance), using an epoch-stamped scratch — no allocation,
    /// no sorting.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_epoch = self.lbd_epoch.wrapping_add(1);
        if self.lbd_epoch == 0 {
            self.lbd_seen.iter_mut().for_each(|s| *s = 0);
            self.lbd_epoch = 1;
        }
        let mut lbd = 0u32;
        for &l in lits {
            let lvl = self.level[l.var().index()] as usize;
            if self.lbd_seen[lvl] != self.lbd_epoch {
                self.lbd_seen[lvl] = self.lbd_epoch;
                lbd += 1;
            }
        }
        lbd
    }

    // ------------------------------------------------------------------
    // Learned database maintenance
    // ------------------------------------------------------------------

    /// Number of live learned clauses.
    pub fn num_learnts(&self) -> usize {
        self.clauses.num_learnt()
    }

    /// Exports up to `max_count` learned clauses of length at most
    /// `max_len`, best first — the hook that lets the bounding subsystem
    /// promote learned clauses into the residual problem's dynamic-row
    /// region (and the local search fold them into its constraint set).
    ///
    /// Selection is **LBD-primary** (Glucose-style: few decision levels
    /// at learn time ⇒ the clause captures real structure), with
    /// activity as the tie-break — activity at export time is a coarse
    /// recency proxy, while a low LBD stays meaningful for the clause's
    /// whole life. The clauses stay owned by the engine; the returned
    /// literal vectors are snapshots, valid regardless of later database
    /// reductions.
    pub fn export_learnts(&self, max_len: usize, max_count: usize) -> Vec<Vec<Lit>> {
        self.export_learnts_excluding(max_len, max_count, Taint::NONE)
    }

    /// [`Engine::export_learnts`] restricted to clauses whose taint does
    /// **not** intersect `exclude` — e.g. pass [`Taint::ASSUMPTION`] to
    /// export only clauses valid outside the current cube (the dynamic-row
    /// promotion filter of a cube worker with clause sharing on).
    /// `exclude = Taint::NONE` excludes nothing.
    pub fn export_learnts_excluding(
        &self,
        max_len: usize,
        max_count: usize,
        exclude: Taint,
    ) -> Vec<Vec<Lit>> {
        let mut candidates: Vec<(u32, f64, ClauseId)> = self
            .clauses
            .iter()
            .filter(|(_, c)| {
                c.is_learnt()
                    && !c.is_empty()
                    && c.len() <= max_len
                    && !c.taint().intersects(exclude)
            })
            .map(|(id, c)| (c.lbd(), c.activity(), id))
            .collect();
        candidates.sort_unstable_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| a.2 .0.cmp(&b.2 .0))
        });
        candidates
            .into_iter()
            .take(max_count)
            .map(|(_, _, id)| self.clauses.get(id).lits().to_vec())
            .collect()
    }

    /// Exports up to `max_count` learned clauses that are sound to share
    /// with other cube workers: learnt, length ≤ `max_len`, LBD ≤
    /// `max_lbd`, and whose derivation never touched a root assumption
    /// ([`Taint::ASSUMPTION`]) nor came in through the pool
    /// ([`Taint::IMPORTED`] — already global, re-exporting would only
    /// echo). Clauses may still carry [`Taint::INCUMBENT`]; the caller
    /// must stamp them with the upper bound they are conditional on.
    /// Returns `(literals, taint, lbd)` triples, LBD-best first (same
    /// ordering as [`Engine::export_learnts`]).
    pub fn export_shareable_learnts(
        &self,
        max_len: usize,
        max_count: usize,
        max_lbd: u32,
    ) -> Vec<(Vec<Lit>, Taint, u32)> {
        let mut candidates: Vec<(u32, f64, ClauseId)> = self
            .clauses
            .iter()
            .filter(|(_, c)| {
                c.is_learnt()
                    && !c.is_empty()
                    && c.len() <= max_len
                    && c.lbd() <= max_lbd
                    && !c.taint().intersects(Taint::ASSUMPTION | Taint::IMPORTED)
            })
            .map(|(id, c)| (c.lbd(), c.activity(), id))
            .collect();
        candidates.sort_unstable_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| a.2 .0.cmp(&b.2 .0))
        });
        candidates
            .into_iter()
            .take(max_count)
            .map(|(_, _, id)| {
                let c = self.clauses.get(id);
                (c.lits().to_vec(), c.taint(), c.lbd())
            })
            .collect()
    }

    /// Removes roughly half of the learned clauses, keeping the most
    /// active ones, binary clauses and clauses currently used as reasons.
    pub fn reduce_learnts(&mut self) {
        self.stats.db_reductions += 1;
        let locked: std::collections::HashSet<ClauseId> = self
            .trail
            .iter()
            .filter_map(|l| match self.reason[l.var().index()] {
                Reason::Clause(id) => Some(id),
                _ => None,
            })
            .collect();
        let mut candidates: Vec<(ClauseId, f64)> = self
            .clauses
            .iter()
            .filter(|(id, c)| c.is_learnt() && c.len() > 2 && !locked.contains(id))
            .map(|(id, c)| (id, c.activity()))
            .collect();
        candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let remove_count = candidates.len() / 2;
        let ids: Vec<ClauseId> = candidates[..remove_count].iter().map(|&(id, _)| id).collect();
        for id in ids {
            self.detach_clause(id);
            self.clauses.remove(id);
        }
    }
}
