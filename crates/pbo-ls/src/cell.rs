//! The shared incumbent cell: where local search and branch-and-bound
//! exchange solutions — and, since the dynamic-row work, learned cost
//! cuts.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pbo_core::Lit;
use pbo_fault::failpoint;

/// `cost` value meaning "no incumbent yet".
const EMPTY: i64 = i64::MAX;

/// One learned cost cut in normalized `>=` form, as shared through the
/// cell's cut pool: `sum coeff * lit >= rhs`.
///
/// Every shared cut must be implied by the instance constraints together
/// with the incumbent bound `cost <= best - 1` — consumers may use it to
/// steer search away from non-improving regions, but never to declare a
/// *better* solution infeasible.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SharedCut {
    /// The weighted literals of the cut.
    pub terms: Vec<(i64, Lit)>,
    /// The right-hand side.
    pub rhs: i64,
}

struct CellInner {
    model: Option<Vec<bool>>,
    /// Improving offers in arrival order, for incumbent trajectories.
    history: Vec<(Instant, i64)>,
    /// The current cut pool (replaced wholesale on each publish).
    cuts: Vec<SharedCut>,
    /// Upper bound the current pool was derived for (`EMPTY` when the
    /// pool is empty or was published unconditionally). With several
    /// exact producers racing — the parallel B&B's cube workers — the
    /// pool from the *tightest* incumbent wins: a stale producer with a
    /// weaker upper bound must not overwrite cuts derived from a better
    /// one.
    cuts_upper: i64,
}

/// A thread-safe best-solution cell shared between solution producers.
///
/// The cost of the current best is mirrored in an atomic so readers on
/// the hot path (the branch-and-bound loop, the LS step loop) can check
/// "is there something better than mine?" without taking the lock; the
/// model itself lives behind a mutex and is only touched on actual
/// improvements.
///
/// The cell stores, it does not check: callers must only
/// [`offer`](IncumbentCell::offer) solutions that already passed
/// [`pbo_core::verify_solution`], and consumers re-verify on adoption —
/// feasibility is established at both edges of the exchange, never
/// assumed in the middle.
///
/// # Examples
///
/// ```
/// use pbo_ls::IncumbentCell;
///
/// let cell = IncumbentCell::new();
/// assert_eq!(cell.best_cost(), None);
/// assert!(cell.offer(10, &[true, false]));
/// assert!(!cell.offer(12, &[false, true])); // not an improvement
/// assert!(cell.offer(7, &[false, true]));
/// assert_eq!(cell.best_cost(), Some(7));
/// assert_eq!(cell.snapshot(), Some((7, vec![false, true])));
/// ```
pub struct IncumbentCell {
    cost: AtomicI64,
    /// Epoch of the cut pool; bumped on every publish so consumers can
    /// poll for changes without taking the lock.
    cuts_epoch: AtomicU64,
    inner: Mutex<CellInner>,
}

impl IncumbentCell {
    /// Creates an empty cell.
    pub fn new() -> IncumbentCell {
        IncumbentCell {
            cost: AtomicI64::new(EMPTY),
            cuts_epoch: AtomicU64::new(0),
            inner: Mutex::new(CellInner {
                model: None,
                history: Vec::new(),
                cuts: Vec::new(),
                cuts_upper: EMPTY,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CellInner> {
        // A panicking holder cannot leave a torn state: cost and model
        // are written together under the lock, so recover the guard.
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Cost of the best solution offered so far (lock-free read).
    #[inline]
    pub fn best_cost(&self) -> Option<i64> {
        match self.cost.load(Ordering::Acquire) {
            EMPTY => None,
            c => Some(c),
        }
    }

    /// Offers a solution; it is stored only if strictly cheaper than the
    /// current best. Returns `true` if the cell was updated.
    ///
    /// The caller vouches for `model` being feasible with exactly this
    /// cost (run it through `pbo_core::verify_solution` first).
    pub fn offer(&self, cost: i64, model: &[bool]) -> bool {
        if cost >= self.cost.load(Ordering::Acquire) {
            return false; // fast path: not an improvement
        }
        let mut inner = self.lock();
        // Re-check under the lock: another producer may have won the race.
        if cost >= self.cost.load(Ordering::Acquire) {
            return false;
        }
        // Probe placed while the lock is held but before any write: an
        // injected panic here poisons the mutex with the *previous*
        // incumbent fully intact, which is exactly what the
        // poison-recovery in `lock` must survive.
        failpoint!("cell.offer");
        self.cost.store(cost, Ordering::Release);
        inner.model = Some(model.to_vec());
        inner.history.push((Instant::now(), cost));
        true
    }

    /// Clones the current best solution, if any.
    pub fn snapshot(&self) -> Option<(i64, Vec<bool>)> {
        let inner = self.lock();
        let cost = self.cost.load(Ordering::Acquire);
        inner.model.as_ref().map(|m| (cost, m.clone()))
    }

    /// The incumbent trajectory as `(time since start, cost)` pairs —
    /// every successful offer, in order. Used by the benchmark harness to
    /// measure time-to-target.
    pub fn history_since(&self, start: Instant) -> Vec<(Duration, i64)> {
        self.lock()
            .history
            .iter()
            .map(|&(at, cost)| (at.saturating_duration_since(start), cost))
            .collect()
    }

    /// Replaces the cut pool with `cuts` and bumps the pool epoch. The
    /// producer (the branch-and-bound re-rooting its dynamic rows)
    /// vouches that every cut is implied by the instance plus its
    /// current incumbent bound.
    pub fn publish_cuts(&self, cuts: Vec<SharedCut>) {
        let mut inner = self.lock();
        inner.cuts = cuts;
        inner.cuts_upper = EMPTY;
        self.cuts_epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Like [`IncumbentCell::publish_cuts`], but tagged with the upper
    /// bound the cuts were derived for. The pool is replaced only when
    /// `upper` is at least as tight as the bound behind the current pool
    /// (an untagged pool counts as loosest), so concurrent exact
    /// producers — the parallel B&B's cube workers, each re-rooting on
    /// its own schedule — converge on the cuts of the best incumbent
    /// instead of last-writer-wins. Returns `true` if the pool was
    /// replaced.
    pub fn publish_cuts_for(&self, upper: i64, cuts: Vec<SharedCut>) -> bool {
        let mut inner = self.lock();
        if upper > inner.cuts_upper {
            return false;
        }
        inner.cuts = cuts;
        inner.cuts_upper = upper;
        self.cuts_epoch.fetch_add(1, Ordering::AcqRel);
        true
    }

    /// Current cut-pool epoch (0 = nothing published yet); lock-free.
    #[inline]
    pub fn cuts_epoch(&self) -> u64 {
        self.cuts_epoch.load(Ordering::Acquire)
    }

    /// Clones the cut pool if its epoch differs from `seen`, returning
    /// the new epoch alongside. `None` means "nothing new" — the common
    /// case, answered by one atomic load.
    pub fn cuts_snapshot(&self, seen: u64) -> Option<(u64, Vec<SharedCut>)> {
        if self.cuts_epoch() == seen {
            return None;
        }
        let inner = self.lock();
        let epoch = self.cuts_epoch();
        Some((epoch, inner.cuts.clone()))
    }
}

impl Default for IncumbentCell {
    fn default() -> IncumbentCell {
        IncumbentCell::new()
    }
}

impl std::fmt::Debug for IncumbentCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncumbentCell").field("best_cost", &self.best_cost()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cell_reports_nothing() {
        let cell = IncumbentCell::new();
        assert_eq!(cell.best_cost(), None);
        assert_eq!(cell.snapshot(), None);
        assert!(cell.history_since(Instant::now()).is_empty());
    }

    #[test]
    fn only_improvements_are_kept() {
        let cell = IncumbentCell::new();
        assert!(cell.offer(5, &[true]));
        assert!(!cell.offer(5, &[false]), "equal cost is not an improvement");
        assert!(!cell.offer(9, &[false]));
        assert_eq!(cell.snapshot(), Some((5, vec![true])));
        assert!(cell.offer(3, &[false]));
        assert_eq!(cell.snapshot(), Some((3, vec![false])));
    }

    #[test]
    fn history_records_every_improvement() {
        let start = Instant::now();
        let cell = IncumbentCell::new();
        cell.offer(10, &[true]);
        cell.offer(12, &[true]); // rejected: not in history
        cell.offer(4, &[false]);
        let history = cell.history_since(start);
        let costs: Vec<i64> = history.iter().map(|&(_, c)| c).collect();
        assert_eq!(costs, vec![10, 4]);
    }

    #[test]
    fn tighter_producer_wins_the_cut_pool() {
        let cell = IncumbentCell::new();
        let cut = |rhs| SharedCut { terms: vec![(1, Lit::new(0, true))], rhs };
        assert!(cell.publish_cuts_for(10, vec![cut(1)]));
        let e1 = cell.cuts_epoch();
        // A looser producer (stale worker) must not overwrite.
        assert!(!cell.publish_cuts_for(12, vec![cut(9)]));
        assert_eq!(cell.cuts_epoch(), e1);
        assert_eq!(cell.cuts_snapshot(0).unwrap().1, vec![cut(1)]);
        // Equal upper republishes (restart refresh), tighter replaces.
        assert!(cell.publish_cuts_for(10, vec![cut(2)]));
        assert!(cell.publish_cuts_for(7, vec![cut(3)]));
        assert_eq!(cell.cuts_snapshot(0).unwrap().1, vec![cut(3)]);
        // The untagged legacy publish counts as loosest afterwards.
        cell.publish_cuts(vec![cut(4)]);
        assert!(cell.publish_cuts_for(100, vec![cut(5)]));
        assert_eq!(cell.cuts_snapshot(0).unwrap().1, vec![cut(5)]);
    }

    /// Satellite of the robustness PR: a producer that panics while
    /// holding the model lock (injected via the `cell.offer` failpoint)
    /// poisons the mutex, and every later reader and writer must still
    /// see the incumbent published before the crash.
    #[cfg(feature = "failpoints")]
    #[test]
    fn poisoned_lock_still_serves_the_incumbent() {
        let _guard = pbo_fault::install(pbo_fault::FaultPlan::new().panic_on("cell.offer", 2));
        let cell = IncumbentCell::new();
        assert!(cell.offer(10, &[true, false])); // first hit: publishes
                                                 // Second offer panics mid-hold, poisoning the mutex.
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cell.offer(5, &[false, true]);
        }));
        assert!(crashed.is_err(), "failpoint must fire inside the lock hold");
        // The pre-crash incumbent survives for readers...
        assert_eq!(cell.best_cost(), Some(10));
        assert_eq!(cell.snapshot(), Some((10, vec![true, false])));
        // ...and the cell keeps accepting offers after recovery.
        assert!(cell.offer(7, &[false, true]));
        assert_eq!(cell.snapshot(), Some((7, vec![false, true])));
    }

    #[test]
    fn concurrent_offers_keep_the_minimum() {
        let cell = std::sync::Arc::new(IncumbentCell::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let cell = &cell;
                s.spawn(move || {
                    for i in 0..50 {
                        cell.offer(100 - i - t, &[true, false]);
                    }
                });
            }
        });
        assert_eq!(cell.best_cost(), Some(100 - 49 - 3));
    }
}
