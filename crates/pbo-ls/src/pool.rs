//! ParLS-PBO-style diversified local-search worker pool.
//!
//! ParLS-PBO's observation is that the anytime side of a PBO portfolio
//! scales near-linearly with *diversified* local-search workers sharing
//! one incumbent: each worker walks the same instance with a different
//! seed, noise level and restart cadence, and the shared
//! [`IncumbentCell`] keeps the best verified solution any of them found.
//! The instance's flat [`TermArena`](pbo_core::TermArena) is read-only
//! and borrowed by every [`LocalSearch`], so a pool of N workers shares
//! one copy of the term and occurrence data — spawning a worker costs
//! per-worker counters only.
//!
//! Two drivers are provided:
//!
//! * [`run_pool_racing`] — live sharing: every worker publishes each
//!   verified improvement to the cell and re-seeds its restarts from
//!   external improvements, until a stop flag is raised. This is what
//!   `Portfolio::Concurrent` runs against the exact solver.
//! * [`run_pool_steps`] — the deterministic probe: workers run
//!   *independently* under a fixed step budget (no mid-run exchange) and
//!   the pool result is the best worker result. Because worker 0 runs
//!   the base options verbatim, the pool is **never worse than a single
//!   worker with the same seed** — the property the `parls` benchmark
//!   gate asserts — and the outcome is bit-reproducible.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicBool;
use std::time::Instant;

use pbo_core::Instance;
use pbo_trace::{Event, TraceEvent, Tracer, LS_LANE_BASE};

use crate::cell::IncumbentCell;
use crate::search::{LocalSearch, LsOptions, LsStats};

/// Derives worker `worker`'s diversified configuration from `base`.
///
/// Worker 0 is `base` verbatim (so a 1-worker pool is exactly the
/// single-engine behaviour); later workers get a seed derived by a
/// fixed splitmix-style odd multiplier, progressively higher noise
/// (capped), and a staggered restart cadence — the ParLS-PBO recipe of
/// "same engine, different trajectory".
pub fn diversified_options(base: &LsOptions, worker: usize) -> LsOptions {
    if worker == 0 {
        return base.clone();
    }
    let w = worker as u64;
    LsOptions {
        seed: base.seed ^ w.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        noise: (base.noise * (1.0 + 0.4 * worker as f64)).min(0.5),
        restart_interval: base.restart_interval + (w * base.restart_interval) / 4,
        ..base.clone()
    }
}

/// Result of a deterministic pool run ([`run_pool_steps`]).
#[derive(Clone, Debug)]
pub struct PoolResult {
    /// Cost of the best verified solution any worker found.
    pub best_cost: Option<i64>,
    /// The best verified solution itself.
    pub best_model: Option<Vec<bool>>,
    /// Per-worker effort counters, indexed by worker.
    pub worker_stats: Vec<LsStats>,
    /// Per-worker best costs, indexed by worker (worker 0 == the
    /// single-engine baseline).
    pub worker_costs: Vec<Option<i64>>,
    /// Workers that died (panicked) during the run; their slots carry
    /// default stats and no cost. Always 0 unless a fault was injected
    /// or an engine bug fired.
    pub workers_lost: u64,
}

/// Runs `workers` diversified engines **independently** for `max_steps`
/// steps each and returns the best result (ties break toward the lowest
/// worker index). Deterministic: no mid-run exchange, every worker's
/// walk depends only on its derived seed.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn run_pool_steps(
    instance: &Instance,
    base: &LsOptions,
    workers: usize,
    max_steps: u64,
) -> PoolResult {
    assert!(workers > 0, "a pool needs at least one worker");
    // Panic containment: a dying worker (engine bug, injected fault)
    // loses only its own slot — the pool result is built from the
    // survivors, and the loss is reported instead of propagated.
    let results: Vec<Option<_>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let opts = LsOptions { max_steps, ..diversified_options(base, w) };
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        LocalSearch::new(instance, opts).run(None, None)
                    }))
                    .ok()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().ok().flatten()).collect()
    });
    let workers_lost = results.iter().filter(|r| r.is_none()).count() as u64;
    let mut best: Option<(i64, Vec<bool>)> = None;
    for r in results.iter().flatten() {
        if let (Some(c), Some(m)) = (r.best_cost, r.best_model.as_ref()) {
            if best.as_ref().is_none_or(|(b, _)| c < *b) {
                best = Some((c, m.clone()));
            }
        }
    }
    PoolResult {
        best_cost: best.as_ref().map(|(c, _)| *c),
        best_model: best.map(|(_, m)| m),
        worker_stats: results
            .iter()
            .map(|r| r.as_ref().map(|r| r.stats.clone()).unwrap_or_default())
            .collect(),
        worker_costs: results.iter().map(|r| r.as_ref().and_then(|r| r.best_cost)).collect(),
        workers_lost,
    }
}

/// Runs `workers` diversified engines with **live sharing** through
/// `cell` until `stop` is raised: every verified improvement is
/// published, external improvements re-seed each worker's restarts, and
/// the freshest cut pool is folded in at restarts. Returns the
/// per-worker effort counters (the best solution lives in the cell).
///
/// Each worker's walk is deterministic given its derived seed *and* the
/// sequence of external incumbents it adopts; with one worker and no
/// external producer the run is bit-reproducible.
pub fn run_pool_racing(
    instance: &Instance,
    base: &LsOptions,
    workers: usize,
    chunk_steps: u64,
    cell: &IncumbentCell,
    stop: &AtomicBool,
) -> Vec<LsStats> {
    run_pool_racing_traced(instance, base, workers, chunk_steps, cell, stop, None).worker_stats
}

/// Result of a traced racing pool run ([`run_pool_racing_traced`]).
#[derive(Clone, Debug)]
pub struct PoolRun {
    /// Per-worker effort counters; lost workers carry default stats.
    pub worker_stats: Vec<LsStats>,
    /// The merged telemetry stream (empty without a trace epoch).
    pub events: Vec<Event>,
    /// Workers that died (panicked) during the run. The cell keeps
    /// every incumbent the dead worker published before crashing.
    pub workers_lost: u64,
}

/// [`run_pool_racing`] with telemetry: when `trace_epoch` is given, every
/// worker buffers its restart/cut-install/incumbent events on lane
/// [`LS_LANE_BASE`]` + worker` with timestamps relative to that epoch
/// (pass the solve's start instant so LS lanes align with the exact
/// side's lanes). The merged event stream rides alongside the per-worker
/// counters; with `trace_epoch == None` the emission path is the
/// allocation-free no-op sink.
pub fn run_pool_racing_traced(
    instance: &Instance,
    base: &LsOptions,
    workers: usize,
    chunk_steps: u64,
    cell: &IncumbentCell,
    stop: &AtomicBool,
    trace_epoch: Option<Instant>,
) -> PoolRun {
    assert!(workers > 0, "a pool needs at least one worker");
    // Panic containment: each worker body runs under `catch_unwind`, so
    // one dying worker (its trace buffer lost with it) degrades the
    // pool to N−1 racers instead of unwinding through the portfolio —
    // every incumbent it published before the crash is already in the
    // cell.
    let results: Vec<Option<(LsStats, Vec<Event>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let opts = LsOptions {
                    max_steps: chunk_steps,
                    time_limit: None,
                    ..diversified_options(base, w)
                };
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        let mut ls = LocalSearch::new(instance, opts);
                        // The tracer is built inside the worker thread: its
                        // buffer is worker-owned (no cross-thread sharing),
                        // only the drained events cross back at join.
                        ls.set_tracer(match trace_epoch {
                            Some(epoch) => Tracer::buffered(LS_LANE_BASE + w as u32, epoch),
                            None => Tracer::off(),
                        });
                        loop {
                            let before = ls.stats.steps;
                            let _ = ls.run(Some(cell), Some(stop));
                            if stop.load(std::sync::atomic::Ordering::Relaxed) {
                                break (ls.stats.clone(), ls.drain_trace());
                            }
                            if ls.stats.steps == before {
                                // Nothing left to do (target/optimum reached):
                                // idle politely until the stop flag rises.
                                std::thread::sleep(std::time::Duration::from_millis(1));
                            }
                        }
                    }))
                    .ok()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().ok().flatten()).collect()
    });
    let mut run = PoolRun {
        worker_stats: Vec::with_capacity(results.len()),
        events: Vec::new(),
        workers_lost: 0,
    };
    for (w, r) in results.into_iter().enumerate() {
        match r {
            Some((s, ev)) => {
                run.worker_stats.push(s);
                run.events.extend(ev);
            }
            None => {
                run.worker_stats.push(LsStats::default());
                run.workers_lost += 1;
                // The dead worker's buffer unwound with it; mark the
                // loss on its lane from the outside.
                if let Some(epoch) = trace_epoch {
                    run.events.push(Event {
                        t_ns: epoch.elapsed().as_nanos() as u64,
                        lane: LS_LANE_BASE + w as u32,
                        data: TraceEvent::WorkerLost,
                    });
                }
            }
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::InstanceBuilder;
    use std::sync::atomic::Ordering;

    fn covering_instance() -> Instance {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(4);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_clause([v[1].positive(), v[2].positive()]);
        b.add_clause([v[2].positive(), v[3].positive()]);
        b.minimize([
            (2, v[0].positive()),
            (3, v[1].positive()),
            (3, v[2].positive()),
            (2, v[3].positive()),
        ]);
        b.build().unwrap()
    }

    #[test]
    fn worker_zero_is_the_base_configuration() {
        let base = LsOptions::default();
        let w0 = diversified_options(&base, 0);
        assert_eq!(w0.seed, base.seed);
        assert_eq!(w0.noise, base.noise);
        assert_eq!(w0.restart_interval, base.restart_interval);
        // Later workers differ and are mutually distinct.
        let w1 = diversified_options(&base, 1);
        let w2 = diversified_options(&base, 2);
        assert_ne!(w1.seed, base.seed);
        assert_ne!(w1.seed, w2.seed);
        assert!(w1.noise > base.noise && w2.noise > w1.noise);
        assert!(w2.noise <= 0.5, "noise stays capped");
    }

    #[test]
    fn deterministic_pool_never_loses_to_its_own_worker_zero() {
        let inst = covering_instance();
        let base = LsOptions::default();
        let single = run_pool_steps(&inst, &base, 1, 20_000);
        let pool = run_pool_steps(&inst, &base, 4, 20_000);
        assert_eq!(pool.worker_costs[0], single.best_cost, "worker 0 replays the single run");
        match (pool.best_cost, single.best_cost) {
            (Some(p), Some(s)) => assert!(p <= s, "pool {p} worse than single {s}"),
            (p, s) => assert_eq!(p, s),
        }
        // And it is reproducible.
        let again = run_pool_steps(&inst, &base, 4, 20_000);
        assert_eq!(again.best_cost, pool.best_cost);
        assert_eq!(again.best_model, pool.best_model);
        assert_eq!(again.worker_costs, pool.worker_costs);
    }

    #[test]
    fn racing_pool_publishes_verified_incumbents() {
        let inst = covering_instance();
        let cell = IncumbentCell::new();
        let stop = AtomicBool::new(false);
        // Let the workers race briefly, then stop them.
        std::thread::scope(|scope| {
            let h = scope
                .spawn(|| run_pool_racing(&inst, &LsOptions::default(), 3, 4_096, &cell, &stop));
            while cell.best_cost().is_none() {
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
            let stats = h.join().unwrap();
            assert_eq!(stats.len(), 3);
            assert_eq!(stats.iter().map(|s| s.verify_rejects).sum::<u64>(), 0);
        });
        let (cost, model) = cell.snapshot().expect("racing pool must find something");
        assert_eq!(pbo_core::verify_solution(&inst, &model), Ok(cost));
        assert_eq!(cost, 5, "optimum of the covering instance");
    }
}
