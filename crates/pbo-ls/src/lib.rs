//! Stochastic local search for pseudo-Boolean optimization — the
//! *incumbent engine* of the portfolio.
//!
//! The DATE'05 branch-and-bound prunes a node as soon as
//! `lower bound >= best incumbent`, so the quality of the *upper* bound
//! early in the search is as load-bearing as the lower-bounding
//! machinery. This crate provides what the exact solver cannot: a
//! [`LocalSearch`] engine in the WalkSAT / dynamic-local-search family
//! that finds *verified feasible* near-optimal solutions orders of
//! magnitude faster than tree search (the ParLS-PBO observation), to be
//! raced against — or run ahead of — the exact solver.
//!
//! # Algorithm
//!
//! The engine walks over **complete** assignments of a
//! [`pbo_core::Instance`], maintaining per-constraint true-weight
//! counters so a variable flip costs O(occurrences of the variable):
//!
//! * **Repair moves.** While hard constraints are violated, pick a random
//!   violated constraint and flip the variable minimizing the *weighted
//!   deficiency delta* — the change in `sum_c w_c * max(0, rhs_c -
//!   lhs_c)` over all constraints touched by the flip — with a noise
//!   probability of taking a random repair instead (WalkSAT).
//! * **Dynamic constraint weighting.** When the best candidate cannot
//!   reduce the weighted deficiency (a local minimum), the weights of all
//!   currently violated constraints are bumped, reshaping the landscape
//!   (DLS/PAWS-style); weights are halved on restarts so stale hardness
//!   decays.
//! * **Objective-aware picking.** Once an incumbent with cost `U` exists,
//!   the objective joins the score as a pseudo-constraint `cost <= U - 1`
//!   with its own weight, and candidate ties always break toward the
//!   cheaper flip — the search is pulled toward improving solutions, not
//!   just feasible ones.
//! * **Restarts with best-solution caching.** Every `restart_interval`
//!   steps the search re-seeds from the best known solution (randomly
//!   perturbed) or, before any incumbent exists, from a fresh
//!   objective-biased random assignment.
//! * **Verified incumbents.** Every improving solution passes through
//!   [`pbo_core::verify_solution`] before being recorded or published —
//!   the LS counters are never trusted across a component boundary.
//!
//! Randomness comes from a seeded `rand_chacha::ChaCha8Rng`, so runs are
//! deterministic per seed (and platform-independent).
//!
//! # Portfolio integration
//!
//! [`IncumbentCell`] is the thread-safe rendezvous point of the
//! portfolio: LS publishes each verified incumbent with
//! [`IncumbentCell::offer`], the branch-and-bound adopts whatever is
//! cheaper than its own best, and vice versa — incumbents flow both ways
//! ([`LocalSearch::run`] polls the cell and re-seeds restarts from
//! external improvements). See `pbo_solver`'s `portfolio` module for the
//! driver.
//!
//! # Examples
//!
//! ```
//! use pbo_core::InstanceBuilder;
//! use pbo_ls::{LocalSearch, LsOptions};
//!
//! let mut b = InstanceBuilder::new();
//! let v = b.new_vars(3);
//! b.add_clause([v[0].positive(), v[1].positive()]);
//! b.add_clause([v[1].positive(), v[2].positive()]);
//! b.minimize([(2, v[0].positive()), (3, v[1].positive()), (2, v[2].positive())]);
//! let inst = b.build()?;
//!
//! let mut ls = LocalSearch::new(&inst, LsOptions::default());
//! let result = ls.run(None, None);
//! assert_eq!(result.best_cost, Some(3)); // x2 covers both clauses
//! # Ok::<(), pbo_core::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod pool;
mod search;

pub use cell::{IncumbentCell, SharedCut};
pub use pool::{
    diversified_options, run_pool_racing, run_pool_racing_traced, run_pool_steps, PoolResult,
    PoolRun,
};
pub use search::{LocalSearch, LsOptions, LsResult, LsStats};
