//! The WalkSAT/DLS-style local search engine over complete assignments.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use pbo_core::{verify_solution, Instance, PbTerm, TermArena, Var};
use pbo_trace::{TraceEvent, Tracer};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::cell::{IncumbentCell, SharedCut};

/// Weights are halved across the board once any reaches this cap, so the
/// landscape reshaping never runs away numerically.
const WEIGHT_CAP: u64 = 1 << 24;

/// Sentinel for "constraint not in the violated list".
const NOT_VIOLATED: u32 = u32::MAX;

/// Tuning knobs of the local search.
#[derive(Clone, Debug)]
pub struct LsOptions {
    /// RNG seed; equal seeds give bit-identical runs (no time limit).
    pub seed: u64,
    /// Maximum flips/steps per [`LocalSearch::run`] call.
    pub max_steps: u64,
    /// Restart (from the cached best solution, perturbed) every this many
    /// steps.
    pub restart_interval: u64,
    /// Probability of a random walk move when no improving flip exists.
    pub noise: f64,
    /// Wall-clock cap per [`LocalSearch::run`] call.
    pub time_limit: Option<Duration>,
    /// Stop as soon as an incumbent with cost `<= target` is found.
    pub target: Option<i64>,
    /// Candidate flips examined per move (larger constraints are
    /// subsampled from a random rotation).
    pub max_candidates: usize,
    /// Cooperative cancellation, polled at the same cadence as `stop`
    /// and the time limit; a tripped token ends the run with the best
    /// verified incumbent so far.
    pub cancel: Option<pbo_core::CancelToken>,
}

impl Default for LsOptions {
    fn default() -> LsOptions {
        LsOptions {
            seed: 0xb50d,
            max_steps: 200_000,
            restart_interval: 8_000,
            noise: 0.12,
            time_limit: None,
            target: None,
            max_candidates: 16,
            cancel: None,
        }
    }
}

impl LsOptions {
    /// Builder-style seed override.
    pub fn seed(mut self, seed: u64) -> LsOptions {
        self.seed = seed;
        self
    }

    /// Builder-style step-budget override.
    pub fn max_steps(mut self, max_steps: u64) -> LsOptions {
        self.max_steps = max_steps;
        self
    }

    /// Builder-style wall-clock cap override.
    pub fn time_limit(mut self, limit: Duration) -> LsOptions {
        self.time_limit = Some(limit);
        self
    }

    /// Builder-style cancellation-token override.
    pub fn cancel(mut self, cancel: pbo_core::CancelToken) -> LsOptions {
        self.cancel = Some(cancel);
        self
    }
}

/// Cumulative effort counters of a [`LocalSearch`].
#[derive(Clone, Default, Debug)]
pub struct LsStats {
    /// Search steps taken (each step is one flip or one weight bump).
    pub steps: u64,
    /// Variable flips performed.
    pub flips: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Weight-bump (local-minimum escape) events.
    pub weight_bumps: u64,
    /// Cut-pool adoptions: how often the walk folded a fresh set of
    /// learned cost cuts into its constraint set.
    pub cuts_adopted: u64,
    /// Verified improving incumbents recorded.
    pub incumbents: u64,
    /// Candidate incumbents rejected by verification (always 0 unless the
    /// incremental counters are broken).
    pub verify_rejects: u64,
    /// Time from engine construction to the last improving incumbent.
    pub time_to_best: Option<Duration>,
}

/// Outcome of a [`LocalSearch::run`] call.
#[derive(Clone, Debug)]
pub struct LsResult {
    /// Cost of the best verified solution found so far, if any.
    pub best_cost: Option<i64>,
    /// The best verified solution itself.
    pub best_model: Option<Vec<bool>>,
    /// Cumulative effort counters (across all `run` calls).
    pub stats: LsStats,
}

/// One occurrence of a literal in a constraint.
#[derive(Copy, Clone, Debug)]
struct Occ {
    constraint: u32,
    coeff: i64,
}

/// Stochastic local search over complete assignments of one instance.
///
/// See the crate docs for the algorithm. The engine is resumable: each
/// [`run`](LocalSearch::run) call continues from the current state with a
/// fresh step budget, so a portfolio driver can interleave chunks of
/// search with incumbent exchanges.
///
/// # Examples
///
/// ```
/// use pbo_core::InstanceBuilder;
/// use pbo_ls::{LocalSearch, LsOptions};
///
/// let mut b = InstanceBuilder::new();
/// let v = b.new_vars(4);
/// b.add_at_least(2, v.iter().map(|x| x.positive()));
/// b.minimize(v.iter().enumerate().map(|(i, x)| ((i + 1) as i64, x.positive())));
/// let inst = b.build()?;
///
/// let result = LocalSearch::new(&inst, LsOptions::default()).run(None, None);
/// assert_eq!(result.best_cost, Some(3)); // x1 + x2
/// # Ok::<(), pbo_core::BuildError>(())
/// ```
pub struct LocalSearch<'a> {
    instance: &'a Instance,
    options: LsOptions,
    rng: ChaCha8Rng,
    created: Instant,
    optimization: bool,
    /// Instance contains a constraint no assignment satisfies: skip the
    /// walk entirely.
    hopeless: bool,
    // --- static per-instance data ---
    /// Number of instance constraints; rows at or above this index are
    /// adopted cut rows.
    base_rows: usize,
    /// The instance's flat CSR/SoA arena: row terms and the literal →
    /// occurrence CSR of the static rows, **borrowed, never copied** —
    /// every worker of a parallel pool shares this one read-only block.
    arena: &'a TermArena,
    /// Occurrence lists of the adopted cut rows only, indexed by literal
    /// code (sparse; the handful of touched lists is tracked in
    /// `cut_touched` so an epoch swap clears in O(region)).
    cut_occ: Vec<Vec<Occ>>,
    /// Literal codes with a non-empty `cut_occ` list.
    cut_touched: Vec<u32>,
    /// Right-hand side per row (instance rows, then cut rows).
    rhs: Vec<i64>,
    /// Adopted cut rows (terms only; `rhs` holds their right-hand side).
    extra: Vec<Vec<PbTerm>>,
    /// Cut-pool epoch last adopted from the cell.
    cuts_seen: u64,
    /// Objective cost per literal code.
    lit_cost: Vec<i64>,
    /// Best possible objective value (offset): the perfection test.
    min_cost: i64,
    // --- dynamic state ---
    /// Current complete assignment.
    values: Vec<bool>,
    /// True-literal weight per constraint.
    lhs: Vec<i64>,
    /// Dynamic constraint weights.
    weights: Vec<u64>,
    /// Weight of the objective pseudo-constraint `cost <= upper - 1`.
    obj_weight: u64,
    /// Objective value of the current assignment (offset included).
    cost: i64,
    /// Violated constraints (unordered) with O(1) membership updates.
    violated: Vec<u32>,
    vio_pos: Vec<u32>,
    /// Active incumbent bound: the search wants `cost < upper`.
    upper: Option<i64>,
    best: Option<(i64, Vec<bool>)>,
    /// Reusable candidate buffer.
    cand: Vec<usize>,
    /// Effort counters.
    pub stats: LsStats,
    /// Telemetry sink (off by default; see [`LocalSearch::set_tracer`]).
    tracer: Tracer,
}

impl<'a> LocalSearch<'a> {
    /// Builds the engine and seeds it with an objective-biased random
    /// assignment.
    pub fn new(instance: &'a Instance, options: LsOptions) -> LocalSearch<'a> {
        let n = instance.num_vars();
        let m = instance.num_constraints();
        let mut rhs = Vec::with_capacity(m);
        let mut hopeless = false;
        for c in instance.constraints() {
            rhs.push(c.rhs());
            hopeless |= c.is_unsatisfiable();
        }
        let mut lit_cost = vec![0i64; 2 * n];
        let mut min_cost = 0;
        if let Some(obj) = instance.objective() {
            min_cost = obj.offset();
            for &(c, l) in obj.terms() {
                lit_cost[l.code()] = c;
            }
        }
        let seed = options.seed;
        let mut ls = LocalSearch {
            instance,
            options,
            rng: ChaCha8Rng::seed_from_u64(seed),
            created: Instant::now(),
            optimization: instance.is_optimization(),
            hopeless,
            base_rows: m,
            arena: instance.arena(),
            cut_occ: vec![Vec::new(); 2 * n],
            cut_touched: Vec::new(),
            rhs,
            extra: Vec::new(),
            cuts_seen: 0,
            lit_cost,
            min_cost,
            values: vec![false; n],
            lhs: vec![0; m],
            weights: vec![1; m],
            obj_weight: 1,
            cost: 0,
            violated: Vec::with_capacity(m),
            vio_pos: vec![NOT_VIOLATED; m],
            upper: None,
            best: None,
            cand: Vec::new(),
            stats: LsStats::default(),
            tracer: Tracer::off(),
        };
        ls.reset_to(None);
        ls
    }

    /// Installs a telemetry tracer: restarts, cut installs and verified
    /// incumbents are emitted into its buffer. Drain with
    /// [`LocalSearch::drain_trace`] when the walk is done.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Drains the buffered telemetry events recorded so far.
    pub fn drain_trace(&mut self) -> Vec<pbo_trace::Event> {
        self.tracer.drain()
    }

    /// The best verified solution found so far.
    pub fn best(&self) -> Option<(i64, &[bool])> {
        self.best.as_ref().map(|(c, m)| (*c, m.as_slice()))
    }

    /// Number of adopted cut rows currently in the constraint set.
    pub fn num_cut_rows(&self) -> usize {
        self.extra.len()
    }

    /// Number of terms in row `ci` (instance or cut row).
    #[inline]
    fn row_len(&self, ci: usize) -> usize {
        if ci < self.base_rows {
            self.arena.row_len(ci)
        } else {
            self.extra[ci - self.base_rows].len()
        }
    }

    /// Term `k` of row `ci` (instance rows read from the shared arena).
    #[inline]
    fn term_at(&self, ci: usize, k: usize) -> PbTerm {
        if ci < self.base_rows {
            let row = self.arena.row(ci);
            PbTerm::new(row.coeffs[k], row.lits[k])
        } else {
            self.extra[ci - self.base_rows][k]
        }
    }

    /// Replaces the adopted cut rows with `cuts`: the per-row arrays are
    /// rebuilt and the new rows' true-weight counters and violated-set
    /// membership are computed against the current assignment, so the
    /// walk can continue immediately.
    ///
    /// Cut rows are *guidance*: they are implied by "the instance plus
    /// `cost < incumbent`", so no improving solution ever violates one
    /// (the incumbent check in `record_incumbent` is unaffected), while
    /// the weighted walk is steered away from regions the exact solver
    /// has refuted.
    pub fn install_cuts(&mut self, cuts: &[SharedCut]) {
        // Drop the old cut rows from the violated set.
        let stale: Vec<u32> =
            self.violated.iter().copied().filter(|&c| c as usize >= self.base_rows).collect();
        for c in stale {
            self.remove_violated(c);
        }
        // Clear only the occurrence lists the old region touched.
        for &code in &self.cut_touched {
            self.cut_occ[code as usize].clear();
        }
        self.cut_touched.clear();
        self.rhs.truncate(self.base_rows);
        self.lhs.truncate(self.base_rows);
        self.weights.truncate(self.base_rows);
        self.extra.clear();
        for cut in cuts {
            // Rows over variables this instance does not have (a foreign
            // producer) are ignored outright.
            if cut.terms.iter().any(|&(_, l)| l.var().index() >= self.values.len()) {
                continue;
            }
            let ci = (self.base_rows + self.extra.len()) as u32;
            let mut lhs = 0i64;
            for &(coeff, lit) in &cut.terms {
                if self.cut_occ[lit.code()].is_empty() {
                    self.cut_touched.push(lit.code() as u32);
                }
                self.cut_occ[lit.code()].push(Occ { constraint: ci, coeff });
                if self.values[lit.var().index()] == lit.is_positive() {
                    lhs += coeff;
                }
            }
            self.extra.push(cut.terms.iter().map(|&(c, l)| PbTerm::new(c, l)).collect());
            self.rhs.push(cut.rhs);
            self.lhs.push(lhs);
            self.weights.push(1);
        }
        self.vio_pos.resize(self.base_rows + self.extra.len(), NOT_VIOLATED);
        for k in 0..self.extra.len() {
            let ci = self.base_rows + k;
            if self.lhs[ci] < self.rhs[ci] {
                self.add_violated(ci as u32);
            }
        }
        self.tracer.emit(TraceEvent::CutsInstalled { n: self.extra.len() as u64 });
    }

    /// Adopts a fresh cut pool from the cell, if its epoch moved.
    /// Returns `true` when the constraint set changed (the caller must
    /// re-seed before stepping).
    fn adopt_cuts(&mut self, cell: Option<&IncumbentCell>) -> bool {
        let Some(cell) = cell else { return false };
        let Some((epoch, cuts)) = cell.cuts_snapshot(self.cuts_seen) else { return false };
        self.cuts_seen = epoch;
        self.stats.cuts_adopted += 1;
        self.install_cuts(&cuts);
        true
    }

    /// Runs the search until the per-call step budget, the per-call time
    /// limit, the `target`, or `stop` ends it; returns the cumulative
    /// result. `cell` (when given) receives every verified improving
    /// incumbent and is polled for external improvements, which re-seed
    /// the walk.
    pub fn run(&mut self, cell: Option<&IncumbentCell>, stop: Option<&AtomicBool>) -> LsResult {
        let deadline = self.options.time_limit.map(|d| Instant::now() + d);
        let start_steps = self.stats.steps;
        let restart_every = self.options.restart_interval.max(1);
        if !self.hopeless {
            loop {
                let done = self.stats.steps - start_steps;
                if done >= self.options.max_steps {
                    break;
                }
                if done.is_multiple_of(512) {
                    if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                        break;
                    }
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        break;
                    }
                    if self.options.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                        break;
                    }
                    self.adopt_external(cell);
                }
                if self.satisfied_with_best() {
                    break;
                }
                // The restart cadence counts *cumulative* steps, so a
                // driver feeding the engine short per-call budgets (the
                // chunked seeding phase, the concurrent-portfolio loop)
                // restarts exactly as often as one long run would — even
                // when every chunk is shorter than the interval.
                if self.stats.steps > 0 && self.stats.steps.is_multiple_of(restart_every) {
                    // Restarts are the cut-adoption point: a re-seeded
                    // walk starts with `lhs` and the violated set already
                    // covering the freshly folded rows.
                    self.adopt_cuts(cell);
                    self.restart();
                }
                self.step(cell);
            }
        }
        LsResult {
            best_cost: self.best.as_ref().map(|(c, _)| *c),
            best_model: self.best.as_ref().map(|(_, m)| m.clone()),
            stats: self.stats.clone(),
        }
    }

    /// True when no further improvement is possible or wanted: the target
    /// is met, a satisfaction instance is satisfied, or the incumbent
    /// already attains the objective's unconstrained minimum.
    fn satisfied_with_best(&self) -> bool {
        let Some((best, _)) = &self.best else { return false };
        if !self.optimization {
            return true;
        }
        if self.options.target.is_some_and(|t| *best <= t) {
            return true;
        }
        *best <= self.min_cost
    }

    /// One search step: record a feasible improvement, or repair a
    /// violated constraint, or descend on the objective.
    fn step(&mut self, cell: Option<&IncumbentCell>) {
        self.stats.steps += 1;
        if self.violated.is_empty() {
            if self.upper.is_none_or(|u| self.cost < u) {
                self.record_incumbent(cell);
                if !self.optimization {
                    return;
                }
            }
            self.objective_move();
            return;
        }
        let ci = self.violated[self.rng.gen_range(0..self.violated.len())];
        self.repair_move(ci as usize);
    }

    /// Repair move on violated constraint `ci`: flip one of its false
    /// literals.
    fn repair_move(&mut self, ci: usize) {
        // Candidates: variables of false literals of `ci`, sampled from a
        // random rotation so subsampling has no positional bias.
        self.cand.clear();
        let len = self.row_len(ci);
        let start = if len == 0 { 0 } else { self.rng.gen_range(0..len) };
        let mut cand = std::mem::take(&mut self.cand);
        for k in 0..len {
            if cand.len() >= self.options.max_candidates {
                break;
            }
            let t = self.term_at(ci, (start + k) % len);
            let is_true = self.values[t.lit.var().index()] == t.lit.is_positive();
            if !is_true {
                cand.push(t.lit.var().index());
            }
        }
        self.cand = cand;
        self.choose_and_flip();
    }

    /// Objective descent move: flip a costed literal that is currently
    /// true (reducing the objective), chosen by the same weighted score.
    fn objective_move(&mut self) {
        self.cand.clear();
        let Some(obj) = self.instance.objective() else { return };
        let terms = obj.terms();
        if terms.is_empty() {
            return;
        }
        let start = self.rng.gen_range(0..terms.len());
        for k in 0..terms.len() {
            if self.cand.len() >= self.options.max_candidates {
                break;
            }
            let (_, l) = terms[(start + k) % terms.len()];
            let is_true = self.values[l.var().index()] == l.is_positive();
            if is_true {
                self.cand.push(l.var().index());
            }
        }
        self.choose_and_flip();
    }

    /// Scores the candidate buffer and performs the WalkSAT/DLS move:
    /// best improving flip, else noise-directed random flip, else weight
    /// bump + least-damaging flip.
    fn choose_and_flip(&mut self) {
        if self.cand.is_empty() {
            // Nothing flippable (e.g. an unsatisfiable-by-flips row):
            // reshape the landscape and move on.
            self.bump_weights();
            return;
        }
        let mut best_idx = 0;
        let mut best_key = (i128::MAX, i64::MAX);
        for i in 0..self.cand.len() {
            let v = self.cand[i];
            let key = (self.score_flip(v), self.cost_delta(v));
            if key < best_key {
                best_key = key;
                best_idx = i;
            }
        }
        if best_key.0 < 0 {
            let v = self.cand[best_idx];
            self.flip(v);
            return;
        }
        if self.rng.gen_bool(self.options.noise) {
            let v = self.cand[self.rng.gen_range(0..self.cand.len())];
            self.flip(v);
            return;
        }
        self.bump_weights();
        let v = self.cand[best_idx];
        self.flip(v);
    }

    /// Weighted deficiency delta of flipping `v`: negative is good. The
    /// static-row occurrences come straight off the shared arena CSR;
    /// adopted cut rows ride the sparse `cut_occ` side lists.
    fn score_flip(&self, v: usize) -> i128 {
        let now_true = Var::new(v).lit(!self.values[v]);
        let now_false = !now_true;
        let mut delta: i128 = 0;
        let (rows, coeffs) = self.arena.occurrences(now_true);
        for k in 0..rows.len() {
            let ci = rows[k] as usize;
            let before = (self.rhs[ci] - self.lhs[ci]).max(0);
            let after = (self.rhs[ci] - (self.lhs[ci] + coeffs[k])).max(0);
            delta += self.weights[ci] as i128 * (after - before) as i128;
        }
        let (rows, coeffs) = self.arena.occurrences(now_false);
        for k in 0..rows.len() {
            let ci = rows[k] as usize;
            let before = (self.rhs[ci] - self.lhs[ci]).max(0);
            let after = (self.rhs[ci] - (self.lhs[ci] - coeffs[k])).max(0);
            delta += self.weights[ci] as i128 * (after - before) as i128;
        }
        for &Occ { constraint, coeff } in &self.cut_occ[now_true.code()] {
            let ci = constraint as usize;
            let before = (self.rhs[ci] - self.lhs[ci]).max(0);
            let after = (self.rhs[ci] - (self.lhs[ci] + coeff)).max(0);
            delta += self.weights[ci] as i128 * (after - before) as i128;
        }
        for &Occ { constraint, coeff } in &self.cut_occ[now_false.code()] {
            let ci = constraint as usize;
            let before = (self.rhs[ci] - self.lhs[ci]).max(0);
            let after = (self.rhs[ci] - (self.lhs[ci] - coeff)).max(0);
            delta += self.weights[ci] as i128 * (after - before) as i128;
        }
        if let Some(u) = self.upper {
            // Objective pseudo-constraint `cost <= u - 1`.
            let cd = self.cost_delta(v);
            let before = (self.cost - (u - 1)).max(0);
            let after = (self.cost + cd - (u - 1)).max(0);
            delta += self.obj_weight as i128 * (after - before) as i128;
        }
        delta
    }

    /// Objective change of flipping `v` (the universal tie-break).
    fn cost_delta(&self, v: usize) -> i64 {
        let now_true = Var::new(v).lit(!self.values[v]);
        self.lit_cost[now_true.code()] - self.lit_cost[(!now_true).code()]
    }

    /// Flips `v`, updating counters and the violated set in
    /// O(occurrences of `v`). Static-row occurrences are read from the
    /// shared arena CSR (two contiguous arrays), cut rows from the
    /// sparse side lists — the same visit order the merged per-literal
    /// lists used to produce.
    fn flip(&mut self, v: usize) {
        self.stats.flips += 1;
        let now_true = Var::new(v).lit(!self.values[v]);
        let now_false = !now_true;
        self.values[v] = !self.values[v];
        let arena = self.arena;
        let (rows, coeffs) = arena.occurrences(now_true);
        for k in 0..rows.len() {
            let ci = rows[k] as usize;
            let was = self.lhs[ci];
            self.lhs[ci] = was + coeffs[k];
            if was < self.rhs[ci] && self.lhs[ci] >= self.rhs[ci] {
                self.remove_violated(rows[k]);
            }
        }
        for k in 0..self.cut_occ[now_true.code()].len() {
            let Occ { constraint, coeff } = self.cut_occ[now_true.code()][k];
            let ci = constraint as usize;
            let was = self.lhs[ci];
            self.lhs[ci] = was + coeff;
            if was < self.rhs[ci] && self.lhs[ci] >= self.rhs[ci] {
                self.remove_violated(constraint);
            }
        }
        let (rows, coeffs) = arena.occurrences(now_false);
        for k in 0..rows.len() {
            let ci = rows[k] as usize;
            let was = self.lhs[ci];
            self.lhs[ci] = was - coeffs[k];
            if was >= self.rhs[ci] && self.lhs[ci] < self.rhs[ci] {
                self.add_violated(rows[k]);
            }
        }
        for k in 0..self.cut_occ[now_false.code()].len() {
            let Occ { constraint, coeff } = self.cut_occ[now_false.code()][k];
            let ci = constraint as usize;
            let was = self.lhs[ci];
            self.lhs[ci] = was - coeff;
            if was >= self.rhs[ci] && self.lhs[ci] < self.rhs[ci] {
                self.add_violated(constraint);
            }
        }
        self.cost += self.lit_cost[now_true.code()] - self.lit_cost[now_false.code()];
    }

    #[inline]
    fn add_violated(&mut self, c: u32) {
        debug_assert_eq!(self.vio_pos[c as usize], NOT_VIOLATED);
        self.vio_pos[c as usize] = self.violated.len() as u32;
        self.violated.push(c);
    }

    #[inline]
    fn remove_violated(&mut self, c: u32) {
        let pos = self.vio_pos[c as usize];
        debug_assert_ne!(pos, NOT_VIOLATED);
        let last = *self.violated.last().expect("violated list cannot be empty here");
        self.violated.swap_remove(pos as usize);
        if last != c {
            self.vio_pos[last as usize] = pos;
        }
        self.vio_pos[c as usize] = NOT_VIOLATED;
    }

    /// Bumps the weights of everything currently violated (the DLS
    /// landscape reshaping), halving across the board at the cap.
    fn bump_weights(&mut self) {
        self.stats.weight_bumps += 1;
        let mut max_seen = self.obj_weight;
        for &c in &self.violated {
            let w = &mut self.weights[c as usize];
            *w += 1;
            max_seen = max_seen.max(*w);
        }
        if self.upper.is_some_and(|u| self.cost >= u) {
            self.obj_weight += 1;
        }
        if max_seen >= WEIGHT_CAP {
            for w in &mut self.weights {
                *w = (*w / 2).max(1);
            }
            self.obj_weight = (self.obj_weight / 2).max(1);
        }
    }

    /// Verifies and records the current assignment as an incumbent;
    /// publishes improvements to `cell`.
    fn record_incumbent(&mut self, cell: Option<&IncumbentCell>) {
        match verify_solution(self.instance, &self.values) {
            Ok(cost) => {
                debug_assert_eq!(cost, self.cost, "LS cost counter drifted");
                let improved = self.best.as_ref().is_none_or(|(b, _)| cost < *b);
                if improved {
                    self.best = Some((cost, self.values.clone()));
                    self.stats.incumbents += 1;
                    self.stats.time_to_best = Some(self.created.elapsed());
                    self.tracer.emit(TraceEvent::Solution { cost });
                    if let Some(cell) = cell {
                        cell.offer(cost, &self.values);
                    }
                }
                if self.optimization {
                    let u = self.upper.map_or(cost, |u| u.min(cost));
                    self.upper = Some(u);
                }
            }
            Err(_) => {
                debug_assert!(false, "LS incumbent failed verification");
                self.stats.verify_rejects += 1;
            }
        }
    }

    /// Adopts a strictly better external incumbent from the cell: it
    /// becomes the cached best and the walk re-seeds from it.
    fn adopt_external(&mut self, cell: Option<&IncumbentCell>) {
        let Some(cell) = cell else { return };
        let mine = self.best.as_ref().map(|(c, _)| *c);
        if cell.best_cost().is_none_or(|c| mine.is_some_and(|m| c >= m)) {
            return;
        }
        let Some((cost, model)) = cell.snapshot() else { return };
        if mine.is_some_and(|m| cost >= m) {
            return; // raced: someone (us?) improved meanwhile
        }
        // Trust nothing across the thread boundary unverified.
        if verify_solution(self.instance, &model) != Ok(cost) {
            self.stats.verify_rejects += 1;
            return;
        }
        self.best = Some((cost, model.clone()));
        if self.optimization {
            self.upper = Some(cost);
        }
        self.reset_to(Some(&model));
    }

    /// Restart: decay weights, re-seed from the perturbed best solution
    /// (or fresh randomness before any incumbent exists).
    fn restart(&mut self) {
        self.stats.restarts += 1;
        self.tracer.emit(TraceEvent::LsRestart);
        for w in &mut self.weights {
            *w = (*w / 2).max(1);
        }
        self.obj_weight = (self.obj_weight / 2).max(1);
        match self.best.as_ref().map(|(_, m)| m.clone()) {
            Some(model) => {
                self.reset_to(Some(&model));
                // Perturb so the walk does not redo the identical descent.
                let n = self.values.len();
                if n > 0 {
                    let kicks = 2 + self.rng.gen_range(0..n / 16 + 1);
                    for _ in 0..kicks {
                        let v = self.rng.gen_range(0..n);
                        self.flip(v);
                    }
                }
            }
            None => self.reset_to(None),
        }
    }

    /// Resets the dynamic state to `model`, or to an objective-biased
    /// random assignment (costed literals preferentially false).
    fn reset_to(&mut self, model: Option<&[bool]>) {
        match model {
            Some(m) => self.values.copy_from_slice(m),
            None => {
                for v in 0..self.values.len() {
                    let pos_cost = self.lit_cost[Var::new(v).positive().code()];
                    let neg_cost = self.lit_cost[Var::new(v).negative().code()];
                    self.values[v] = if pos_cost > neg_cost {
                        // Positive literal costed: prefer false.
                        !self.rng.gen_bool(0.9)
                    } else if neg_cost > pos_cost {
                        self.rng.gen_bool(0.9)
                    } else {
                        self.rng.gen_bool(0.5)
                    };
                }
            }
        }
        self.violated.clear();
        self.vio_pos.fill(NOT_VIOLATED);
        for ci in 0..self.rhs.len() {
            let mut lhs = 0i64;
            for k in 0..self.row_len(ci) {
                let t = self.term_at(ci, k);
                if self.values[t.lit.var().index()] == t.lit.is_positive() {
                    lhs += t.coeff;
                }
            }
            self.lhs[ci] = lhs;
            if lhs < self.rhs[ci] {
                self.add_violated(ci as u32);
            }
        }
        self.cost = self.instance.cost_of(&self.values);
    }
}

impl std::fmt::Debug for LocalSearch<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalSearch")
            .field("best", &self.best.as_ref().map(|(c, _)| *c))
            .field("violated", &self.violated.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::InstanceBuilder;

    fn covering_instance() -> Instance {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_clause([v[1].positive(), v[2].positive()]);
        b.minimize([(2, v[0].positive()), (3, v[1].positive()), (2, v[2].positive())]);
        b.build().unwrap()
    }

    #[test]
    fn finds_the_covering_optimum() {
        let inst = covering_instance();
        let result = LocalSearch::new(&inst, LsOptions::default()).run(None, None);
        assert_eq!(result.best_cost, Some(3));
        let model = result.best_model.unwrap();
        assert_eq!(verify_solution(&inst, &model), Ok(3));
        assert_eq!(result.stats.verify_rejects, 0);
    }

    #[test]
    fn handles_general_pb_constraints() {
        // 3x1 + 2x2 + 2x3 >= 5, costs 4/1/1: optimum is x1+x2 (or x1+x3) = 5.
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(3);
        b.add_linear(
            vec![(3, v[0].positive()), (2, v[1].positive()), (2, v[2].positive())],
            pbo_core::RelOp::Ge,
            5,
        );
        b.minimize([(4, v[0].positive()), (1, v[1].positive()), (1, v[2].positive())]);
        let inst = b.build().unwrap();
        let result = LocalSearch::new(&inst, LsOptions::default()).run(None, None);
        assert_eq!(result.best_cost, Some(5));
    }

    #[test]
    fn satisfaction_instance_stops_at_first_solution() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(4);
        b.add_clause([v[0].positive(), v[1].positive()]);
        b.add_clause([v[2].negative(), v[3].positive()]);
        let inst = b.build().unwrap();
        let mut ls = LocalSearch::new(&inst, LsOptions::default());
        let result = ls.run(None, None);
        assert_eq!(result.best_cost, Some(0));
        assert!(result.stats.steps < LsOptions::default().max_steps, "must stop early");
    }

    #[test]
    fn hopeless_instance_returns_nothing_quickly() {
        let mut b = InstanceBuilder::new();
        let v = b.new_vars(1);
        b.add_linear(vec![(1, v[0].positive())], pbo_core::RelOp::Ge, 5);
        let inst = b.build().unwrap();
        let result = LocalSearch::new(&inst, LsOptions::default()).run(None, None);
        assert_eq!(result.best_cost, None);
        assert_eq!(result.stats.steps, 0, "unsatisfiable-by-sum rows short-circuit");
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = pbo_benchgen::RandomParams {
            vars: 20,
            constraints: 30,
            arity: (2, 5),
            coeff: (1, 4),
            positive_bias: 1.0,
            optimization: true,
            ..pbo_benchgen::RandomParams::default()
        }
        .generate(7);
        let opts = LsOptions { max_steps: 20_000, time_limit: None, ..LsOptions::default() };
        let a = LocalSearch::new(&inst, opts.clone()).run(None, None);
        let b = LocalSearch::new(&inst, opts.clone()).run(None, None);
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.best_model, b.best_model);
        assert_eq!(a.stats.steps, b.stats.steps);
        assert_eq!(a.stats.flips, b.stats.flips);
        // A different seed is allowed to differ (and usually does in
        // effort, even when it lands on the same optimum).
        let c = LocalSearch::new(&inst, opts.seed(999)).run(None, None);
        if let (Some(ca), Some(cc)) = (a.best_cost, c.best_cost) {
            // Both must still be verified-feasible costs.
            assert!(ca >= 0 && cc >= 0);
        }
    }

    #[test]
    fn publishes_and_adopts_through_the_cell() {
        let inst = covering_instance();
        let cell = IncumbentCell::new();
        // Pre-load the cell with the (verified) optimum; LS must adopt it
        // rather than regress.
        assert_eq!(verify_solution(&inst, &[false, true, false]), Ok(3));
        cell.offer(3, &[false, true, false]);
        let mut ls = LocalSearch::new(&inst, LsOptions::default().max_steps(5_000));
        let result = ls.run(Some(&cell), None);
        assert_eq!(result.best_cost, Some(3));
        // And the cell still holds the optimum (LS cannot beat it here).
        assert_eq!(cell.best_cost(), Some(3));
    }

    #[test]
    fn stop_flag_halts_the_run() {
        let inst = covering_instance();
        let stop = AtomicBool::new(true);
        let mut ls = LocalSearch::new(&inst, LsOptions::default());
        let result = ls.run(None, Some(&stop));
        assert_eq!(result.stats.steps, 0, "pre-raised stop flag halts before any step");
    }

    #[test]
    fn adopts_cuts_from_the_cell_on_restart() {
        let inst = covering_instance();
        let cell = IncumbentCell::new();
        // Publish a genuine cost cut for upper = 7: 2~x1 + 3~x2 + 2~x3 >= 1
        // (i.e. cost <= 6), as the exact solver's re-root would.
        let v: Vec<Var> = (0..3).map(Var::new).collect();
        cell.publish_cuts(vec![SharedCut {
            terms: vec![(2, v[0].negative()), (3, v[1].negative()), (2, v[2].negative())],
            rhs: 1,
        }]);
        let opts = LsOptions { restart_interval: 500, max_steps: 5_000, ..LsOptions::default() };
        let mut ls = LocalSearch::new(&inst, opts);
        let result = ls.run(Some(&cell), None);
        assert!(ls.stats.cuts_adopted >= 1, "the pool epoch moved, LS must fold the cuts");
        assert_eq!(ls.num_cut_rows(), 1);
        // The cut never blocks improving solutions: optimum still found
        // and verified.
        assert_eq!(result.best_cost, Some(3));
        assert_eq!(result.stats.verify_rejects, 0);
    }

    #[test]
    fn cut_pool_epoch_swap_replaces_rows() {
        let inst = covering_instance();
        let mut ls = LocalSearch::new(&inst, LsOptions::default());
        let v: Vec<Var> = (0..3).map(Var::new).collect();
        ls.install_cuts(&[
            SharedCut { terms: vec![(1, v[0].negative()), (1, v[1].negative())], rhs: 1 },
            SharedCut { terms: vec![(1, v[2].negative())], rhs: 1 },
        ]);
        assert_eq!(ls.num_cut_rows(), 2);
        // A fresh epoch replaces, never accumulates; out-of-range rows
        // are ignored.
        ls.install_cuts(&[SharedCut { terms: vec![(1, Var::new(99).positive())], rhs: 1 }]);
        assert_eq!(ls.num_cut_rows(), 0, "foreign-variable cut must be dropped");
        // `~x1 >= 1` is consistent with the optimum (x2 alone): the walk
        // is steered toward it, never away.
        ls.install_cuts(&[SharedCut { terms: vec![(1, v[0].negative())], rhs: 1 }]);
        assert_eq!(ls.num_cut_rows(), 1);
        // After a reset the walk still verifies and finds the optimum.
        let result = ls.run(None, None);
        assert_eq!(result.best_cost, Some(3));
    }

    #[test]
    fn target_short_circuits() {
        let inst = covering_instance();
        let opts = LsOptions { target: Some(5), ..LsOptions::default() };
        let mut ls = LocalSearch::new(&inst, opts);
        let result = ls.run(None, None);
        let cost = result.best_cost.unwrap();
        assert!(cost <= 5);
    }
}
