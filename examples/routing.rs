//! Global routing (the paper's `grout` family): route nets across a grid
//! under channel capacities, minimizing wirelength — and watch how much
//! each lower-bounding method prunes.
//!
//! This is the workload class where the paper's message is sharpest:
//! without a cost-function bound the search drowns in cheap-looking
//! partial assignments; with LPR the tree collapses.
//!
//! ```text
//! cargo run --release --example routing
//! ```

use std::time::Duration;

use pbo::pbo_benchgen::GroutParams;
use pbo::{solve_with, BsoloOptions, Budget, LbMethod};

fn main() {
    let params = GroutParams {
        width: 5,
        height: 5,
        nets: 14,
        paths_per_net: 5,
        capacity: 3,
        bend_penalty: 2,
    };
    let instance = params.generate(7);
    println!(
        "instance {}: {} path variables, {} constraints",
        instance.name(),
        instance.num_vars(),
        instance.num_constraints()
    );

    let budget = Budget::time_limit(Duration::from_secs(10));
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "bound", "status", "cost", "decisions", "bound-confl", "time"
    );
    for lb in [LbMethod::None, LbMethod::Mis, LbMethod::Lagrangian, LbMethod::Lpr] {
        let result = solve_with(&instance, BsoloOptions::with_lb(lb).budget(budget));
        println!(
            "{:<8} {:>10} {:>10} {:>12} {:>12} {:>9.2}s",
            lb.name(),
            result.status.to_string(),
            result.best_cost.map(|c| c.to_string()).unwrap_or_else(|| "-".into()),
            result.stats.decisions,
            result.stats.bound_conflicts,
            result.stats.solve_time.as_secs_f64()
        );
    }
}
