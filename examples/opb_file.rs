//! OPB interchange: parse a pseudo-Boolean instance from OPB text (or a
//! file given as the first argument), solve it, print the solution, and
//! demonstrate the write/parse round trip.
//!
//! ```text
//! cargo run --example opb_file [instance.opb]
//! ```

use pbo::{parse_opb, solve, write_opb};

const SAMPLE: &str = "\
* minimum-cost feasible mix of three features
min: +4 x1 +2 x2 +5 x3 ;
+1 x1 +1 x2 +1 x3 >= 2 ;
+3 x1 +2 x2 -2 x3 >= 1 ;
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => SAMPLE.to_string(),
    };
    let instance = parse_opb(&text)?;
    println!(
        "parsed `{}`: {} vars, {} constraints",
        instance.name(),
        instance.num_vars(),
        instance.num_constraints()
    );

    let result = solve(&instance);
    println!("status : {}", result.status);
    if let Some(model) = &result.best_assignment {
        let lits: Vec<String> = model
            .iter()
            .enumerate()
            .map(|(i, &v)| format!("{}x{}", if v { "" } else { "~" }, i + 1))
            .collect();
        println!("model  : {}", lits.join(" "));
        println!("cost   : {}", result.best_cost.unwrap_or(0));
    }

    // Round trip: serialize the normalized instance and re-parse it.
    let serialized = write_opb(&instance);
    println!("--- normalized OPB ---\n{serialized}");
    let reparsed = parse_opb(&serialized)?;
    assert_eq!(reparsed.constraints(), instance.constraints());
    println!("round trip OK");
    Ok(())
}
