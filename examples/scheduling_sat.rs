//! Pure pseudo-Boolean satisfaction (the paper's `acc-tight` family):
//! round-robin tournament scheduling with no cost function.
//!
//! Footnote (a) of Table 1: with no objective there is nothing to bound,
//! so every bsolo configuration behaves identically — and the SAT
//! machinery is what matters. The MILP solver, whose only tool is the
//! (useless, all-zero) LP objective, struggles.
//!
//! ```text
//! cargo run --release --example scheduling_sat
//! ```

use std::time::Duration;

use pbo::pbo_benchgen::AccSchedParams;
use pbo::{Bsolo, BsoloOptions, Budget, LbMethod, MilpSolver, SolveStatus};

fn main() {
    let instance = AccSchedParams { teams: 8, home_away: true }.generate(1);
    println!(
        "instance {}: {} vars, {} constraints, optimization = {}",
        instance.name(),
        instance.num_vars(),
        instance.num_constraints(),
        instance.is_optimization()
    );

    let budget = Budget::time_limit(Duration::from_secs(5));
    // All four bsolo configurations: identical behaviour expected.
    for lb in [LbMethod::None, LbMethod::Mis, LbMethod::Lagrangian, LbMethod::Lpr] {
        let r = Bsolo::new(BsoloOptions::with_lb(lb).budget(budget)).solve(&instance);
        println!(
            "bsolo-{:<6} {:>10}  {:>8} decisions, {} LB calls (must be 0), {:.2}s",
            lb.name(),
            r.status.to_string(),
            r.stats.decisions,
            r.stats.lb_calls,
            r.stats.solve_time.as_secs_f64()
        );
        assert_eq!(r.stats.lb_calls, 0, "no objective: the bound must never run");
        assert_eq!(r.status, SolveStatus::Optimal, "schedule exists");
    }
    // The MILP baseline has no SAT propagation to lean on.
    let milp = MilpSolver::new(budget).solve(&instance);
    println!(
        "cplex-like  {:>10}  {} nodes, {:.2}s",
        milp.status.to_string(),
        milp.stats.nodes,
        milp.stats.solve_time.as_secs_f64()
    );
}
