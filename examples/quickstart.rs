//! Quickstart: build a tiny weighted covering problem, solve it with the
//! default configuration (bsolo + LP-relaxation lower bounding) and
//! inspect the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pbo::{solve, InstanceBuilder};

fn main() -> Result<(), pbo::BuildError> {
    // minimize 2 x1 + 3 x2 + 2 x3 + 4 x4
    // subject to: every "element" covered by at least one chosen "set".
    let mut builder = InstanceBuilder::new();
    let sets = builder.new_vars(4);
    builder.name("quickstart-cover");
    builder.add_clause([sets[0].positive(), sets[1].positive()]); // element a
    builder.add_clause([sets[1].positive(), sets[2].positive()]); // element b
    builder.add_clause([sets[2].positive(), sets[3].positive()]); // element c
    builder.minimize([
        (2, sets[0].positive()),
        (3, sets[1].positive()),
        (2, sets[2].positive()),
        (4, sets[3].positive()),
    ]);
    let instance = builder.build()?;
    println!("{instance:?}");

    let result = solve(&instance);
    println!("status      : {}", result.status);
    println!("optimum     : {:?}", result.best_cost);
    if let Some(model) = &result.best_assignment {
        let chosen: Vec<String> = model
            .iter()
            .enumerate()
            .filter(|(_, &v)| v)
            .map(|(i, _)| format!("set{}", i + 1))
            .collect();
        println!("chosen sets : {}", chosen.join(", "));
    }
    println!(
        "effort      : {} decisions, {} conflicts ({} bound conflicts), {} LB calls",
        result.stats.decisions,
        result.stats.conflicts,
        result.stats.bound_conflicts,
        result.stats.lb_calls
    );
    assert_eq!(result.best_cost, Some(4), "x1 + x3 covers everything for 4");
    Ok(())
}
