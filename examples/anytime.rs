//! Anytime solving: race the stochastic local search against the exact
//! branch-and-bound under a wall-clock budget, watching incumbents
//! arrive through the shared cell.
//!
//! ```text
//! cargo run --release --example anytime
//! ```

use std::time::{Duration, Instant};

use pbo::pbo_benchgen::SynthesisParams;
use pbo::{BsoloOptions, Budget, IncumbentCell, Portfolio, PortfolioOptions, SolveStrategy};

fn main() {
    // A Table-1-style two-level synthesis covering instance: big enough
    // that the exact solver needs real work.
    let instance = SynthesisParams {
        primes: 70,
        minterms: 110,
        cover_density: 4.0,
        exclusions: 10,
        ..SynthesisParams::default()
    }
    .generate(1);
    println!("{} vars, {} constraints", instance.num_vars(), instance.num_constraints());

    let options = PortfolioOptions {
        strategy: SolveStrategy::Concurrent,
        bsolo: BsoloOptions::default().budget(Budget::time_limit(Duration::from_secs(5))),
        ..PortfolioOptions::default()
    };

    // A caller-owned cell exposes the incumbent trajectory: every entry
    // is a verified solution that was, at that moment, the best known.
    let cell = IncumbentCell::new();
    let start = Instant::now();
    let result = Portfolio::new(options).solve_with_cell(&instance, &cell);

    println!("incumbent trajectory (time -> cost):");
    for (at, cost) in cell.history_since(start) {
        println!("  {:>8.1} ms  ->  {}", at.as_secs_f64() * 1e3, cost);
    }
    println!("status       : {}", result.status);
    println!("best cost    : {:?}", result.best_cost);
    println!("time to best : {:.1} ms", result.stats.time_to_best.as_secs_f64() * 1e3);
    println!("total time   : {:.1} ms", result.stats.solve_time.as_secs_f64() * 1e3);
    println!("B&B nodes    : {}", result.stats.decisions);
}
