//! Two-level logic minimization as weighted covering (the paper's MCNC
//! family): pick a minimum-cost set of prime implicants covering every
//! minterm, and compare solver classes — SAT linear search, MILP
//! branch-and-bound and bsolo with LPR bounding.
//!
//! ```text
//! cargo run --release --example synthesis_covering
//! ```

use std::time::Duration;

use pbo::pbo_benchgen::SynthesisParams;
use pbo::{Bsolo, BsoloOptions, Budget, LbMethod, LinearSearch, MilpSolver};

fn main() {
    let params = SynthesisParams {
        primes: 50,
        minterms: 70,
        cover_density: 4.0,
        exclusions: 8,
        cost: (1, 9),
    };
    let instance = params.generate(3);
    println!(
        "instance {}: {} primes, {} rows",
        instance.name(),
        instance.num_vars(),
        instance.num_constraints()
    );

    let budget = Budget::time_limit(Duration::from_secs(10));
    let runs: Vec<(&str, pbo::SolveResult)> = vec![
        ("pbs-like", LinearSearch::pbs_like(budget).solve(&instance)),
        ("galena-like", LinearSearch::galena_like(budget).solve(&instance)),
        ("milp (cplex-like)", MilpSolver::new(budget).solve(&instance)),
        (
            "bsolo+LPR",
            Bsolo::new(BsoloOptions::with_lb(LbMethod::Lpr).budget(budget)).solve(&instance),
        ),
    ];
    println!("{:<18} {:>12} {:>8} {:>10}", "solver", "status", "cost", "time");
    for (name, result) in &runs {
        println!(
            "{:<18} {:>12} {:>8} {:>9.2}s",
            name,
            result.status.to_string(),
            result.best_cost.map(|c| c.to_string()).unwrap_or_else(|| "-".into()),
            result.stats.solve_time.as_secs_f64()
        );
    }
    // All solvers that finished must agree.
    let optima: Vec<i64> =
        runs.iter().filter(|(_, r)| r.is_optimal()).filter_map(|(_, r)| r.best_cost).collect();
    if optima.len() > 1 {
        assert!(optima.windows(2).all(|w| w[0] == w[1]), "solvers disagree: {optima:?}");
        println!("all finished solvers agree on optimum {}", optima[0]);
    }
}
